"""CDCL SAT solver on a flat clause arena, with lightweight inprocessing.

Literal encoding: variable ``v`` (0-based) has positive literal ``2*v`` and
negative literal ``2*v + 1``; ``lit ^ 1`` negates.  Assignment convention:
``assigns[v]`` stores the sign bit of the literal of ``v`` that is *true*
(``0`` when ``v`` is true, ``1`` when ``v`` is false, ``2`` when unassigned),
so literal ``lit`` is true iff ``assigns[lit >> 1] == (lit & 1)``.

Clause storage is a single flat Python list (the **arena**): a clause at
offset ``c`` occupies ``[size, lbd, lit_0, ..., lit_{size-1}]``, with
``lbd == 0`` marking an original (never reducible) clause, ``lbd >= 1`` a
learned clause's glue, and ``lbd == -1`` a tombstone awaiting compaction.
Watcher lists are flat paired lists ``[offset, blocker, offset, blocker,
...]`` per literal, and reasons are arena offsets (``-1`` = decision/unit).
Compared to per-clause list objects this keeps the propagation loop on
int reads from a handful of long lists — no small-object churn, no
attribute chasing — which is the difference between interpreting pointers
and streaming cache lines, as close as pure Python gets to it.

The solver maintains three inprocessing mechanisms on top of CDCL:

* **LBD (glue) tracking** — every learned clause records the number of
  distinct decision levels among its literals; clause-DB reduction is
  glue-aware (binaries and ``lbd <= 3`` clauses are immortal, the rest are
  ranked by glue then recency and the worst half dropped).
* **Periodic vivification** — at level 0, every few thousand conflicts, a
  budgeted batch of learned clauses is re-derived by assuming the negation
  of their literals one at a time and propagating; conflicts and implied
  literals shorten or delete the clause.
* **On-the-fly subsumption** — a freshly learned clause that is a subset
  of a recent learned clause replaces it.

Deleted clauses become tombstones; once tombstones exceed a third of the
arena it is compacted in place (offsets in watches/reasons remapped).
All inprocessing is budgeted, runs only at decision level 0, and derives
only clauses implied by the database, so incremental-assumption semantics
are untouched.  ``SATConfig.inprocess`` (or ``PUGPARA_INPROCESS=0`` in
the environment) turns it off for differential testing.

The solver supports MiniSat-style *incremental* use: :meth:`SATSolver.solve`
takes an optional sequence of assumption literals, established as forced
decisions at successive levels before any branching.  Learned clauses,
variable activities, and saved phases persist across calls on the same
instance, so a batch of queries sharing a clause prefix pays for the hard
parts once.  An UNSAT answer under assumptions does not poison the instance
(``ok`` stays True); :attr:`SATSolver.conflict_assumptions` then holds the
subset of assumptions the final conflict depends on.  Time and conflict
budgets return ``UNKNOWN`` and record which axis was binding in
``stats["budget_axis"]``; the checkers report that as the paper's ``T.O``.

Two extensions serve the portfolio runtime (:mod:`repro.smt.portfolio`):

* **Diversification** — a :class:`SATConfig` parameterizes the CDCL
  heuristics (VSIDS decay, restart schedule, phase-saving polarity, a
  deterministic decision-randomization seed).  Any config is sound and
  complete, so diversified instances may disagree only on *which* model
  they find, never on the verdict.
* **Cooperative cancellation** — :meth:`SATSolver.solve` accepts a
  ``cancel`` callable, polled at the same cadence as the deadline (every
  128 conflicts, every 256 decisions, at every restart, and between
  vivification steps).  When it returns True the solve abandons search
  with ``UNKNOWN`` and sets ``stats["cancelled"]`` — no budget axis is
  recorded, so a cancelled attempt is never mistaken for budget
  exhaustion, including when the cancel lands inside inprocessing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from enum import Enum
from heapq import heapify, heappush, heappop
from typing import Callable, Iterable, Iterator

from .luby import luby
from .proof import ProofLog
from ...errors import SolverError

__all__ = ["SATSolver", "SATResult", "SATConfig", "RESTART_SCHEDULES",
           "STAT_COUNTER_KEYS"]

#: Monotone per-solve counters in ``SATSolver.stats`` — the keys the facade
#: and the incremental group loop copy (as deltas) into query stats, and that
#: :mod:`repro.check.result` aggregates into ``stats["solver"]``.
STAT_COUNTER_KEYS = (
    "conflicts", "decisions", "propagations", "restarts", "learned",
    "deleted", "glue2", "glue_low", "glue_high",
    "vivified", "vivify_lits", "subsumed", "compactions",
)

#: Recognised restart schedules for :class:`SATConfig`.
RESTART_SCHEDULES = ("luby", "geometric")

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SATConfig:
    """CDCL heuristic configuration — the portfolio's diversification axes.

    ``SATSolver()`` and ``SATSolver(SATConfig())`` are indistinguishable.
    Every configuration is sound and complete: arms may differ in which
    model they report and how fast they get there, never in the verdict.

    Parameters
    ----------
    var_decay:
        VSIDS activity decay (activities are *divided* by this per
        conflict; smaller = more aggressive focus on recent conflicts).
    clause_decay:
        Retained for configuration compatibility; the clause database is
        now reduced by glue (LBD) and recency rather than activity.
    restart_base:
        Conflicts allowed before the first restart.
    restart_schedule:
        ``"luby"`` (restart ``i`` gets ``restart_base * luby(i)``) or
        ``"geometric"`` (``restart_base * restart_factor ** (i - 1)``).
    restart_factor:
        Growth base of the geometric schedule.
    default_phase:
        Initial saved polarity of fresh variables: ``1`` decides False
        first (MiniSat's default), ``0`` decides True first.
    seed:
        When not None, enables deterministic decision-polarity
        randomization (an xorshift64* stream — no global RNG state).
    random_freq:
        Fraction of decisions whose polarity is flipped at random
        (only with ``seed`` set).
    inprocess:
        Enables periodic vivification and on-the-fly subsumption of
        learned clauses.  ``PUGPARA_INPROCESS=0`` in the environment
        overrides this to False process-wide (the differential CI axis).
    certify:
        Emit a DRAT-style proof log (:class:`repro.smt.sat.proof.ProofLog`
        at :attr:`SATSolver.proof`): every clause received is recorded as
        an axiom, every learned/vivified clause as an addition, every
        reduction/subsumption kill as a deletion.  Logging never changes
        the search; a caller that attaches a shared log via
        :meth:`SATSolver.attach_proof` takes precedence over this flag.
    """
    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart_base: int = 100
    restart_schedule: str = "luby"
    restart_factor: float = 1.5
    default_phase: int = 1
    seed: int | None = None
    random_freq: float = 0.0
    inprocess: bool = True
    certify: bool = False

    def __post_init__(self) -> None:
        if self.restart_schedule not in RESTART_SCHEDULES:
            raise SolverError(
                f"unknown restart schedule {self.restart_schedule!r}; "
                f"expected one of {RESTART_SCHEDULES}")
        if not 0.0 < self.var_decay <= 1.0:
            raise SolverError("var_decay must be in (0, 1]")
        if self.default_phase not in (0, 1):
            raise SolverError("default_phase must be 0 or 1")


#: The configuration every solver uses unless told otherwise.
DEFAULT_CONFIG = SATConfig()


class SATResult(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_UNASSIGNED = 2

#: ``arena[off + 1]`` value marking a tombstoned clause.
_DEAD = -1

#: Learned clauses at or below this glue are never reduced.
_GLUE_KEEP = 3

#: Conflicts between vivification rounds, and its per-round budgets.
_VIVIFY_PERIOD = 4000
_VIVIFY_CLAUSES = 64
_VIVIFY_PROPS = 30_000

#: How many recent learned clauses an on-the-fly subsumption check scans.
_SUBSUME_WINDOW = 2


class _ClauseView:
    """Read-only view of the live *original* clauses (``sat.clauses``).

    Supports ``len`` (used by the stats plumbing) and iteration (used by
    tests); the underlying storage is the arena.
    """

    __slots__ = ("_sat",)

    def __init__(self, sat: "SATSolver") -> None:
        self._sat = sat

    def __len__(self) -> int:
        return self._sat.n_orig

    def __iter__(self) -> Iterator[list[int]]:
        arena = self._sat.arena
        off = 0
        end = len(arena)
        while off < end:
            size = arena[off]
            if arena[off + 1] == 0:
                yield arena[off + 2: off + 2 + size]
            off += size + 2


class SATSolver:
    """A conflict-driven clause-learning solver.

    Usage::

        s = SATSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([2 * a, 2 * b])          # a | b
        s.add_clause([2 * a + 1, 2 * b + 1])  # !a | !b
        assert s.solve() is SATResult.SAT
    """

    def __init__(self, config: SATConfig | None = None) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG
        self.num_vars = 0
        # Per-variable state.
        self.assigns: list[int] = []
        self.levels: list[int] = []
        self.reasons: list[int] = []  # arena offsets; -1 = decision/unit
        self.activity: list[float] = []
        self.phase: list[int] = []  # saved sign bit for the next decision
        # Per-literal flat watcher lists: [offset, blocker, offset, ...].
        self.watches: list[list[int]] = []
        # Clause arena: [size, lbd, lits...] back to back.
        self.arena: list[int] = []
        self.learnt_offs: list[int] = []
        self.n_orig = 0
        self._wasted = 0  # arena slots held by tombstones
        # Trail.
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        # Heuristic state (VSIDS with a lazy heap), set by the config.
        self.var_inc = 1.0
        self.var_decay = 1.0 / self.config.var_decay
        self.order_heap: list[tuple[float, int]] = []
        # Deterministic decision-randomization stream (xorshift64*); no
        # global RNG state, so parallel instances never interfere.
        self._rng = ((self.config.seed or 0) * 2 + 1) & _MASK64
        self.ok = True
        self._pending_prop = False
        self.inprocess = (self.config.inprocess and
                          os.environ.get("PUGPARA_INPROCESS", "1") != "0")
        self._next_vivify = _VIVIFY_PERIOD
        self._vivify_cursor = 0
        # Assumption state for the current/most recent incremental solve.
        self._assumptions: list[int] = []
        #: After an UNSAT answer under assumptions: the subset of assumption
        #: literals the final conflict depends on (empty when the instance
        #: is unsatisfiable regardless of assumptions).
        self.conflict_assumptions: list[int] = []
        #: DRAT-style proof log (None when certification is off).  When
        #: ``_proof_adopt`` is set the axioms were logged upstream (e.g. by
        #: the preprocessor's owner) and the clause loaders must not log
        #: them again; derived additions and deletions always log.
        self.proof: ProofLog | None = \
            ProofLog() if self.config.certify else None
        self._proof_adopt = False
        self.stats: dict[str, object] = {k: 0 for k in STAT_COUNTER_KEYS}

    def attach_proof(self, log: ProofLog, adopt: bool = False) -> None:
        """Log this solver's proof into ``log``.  With ``adopt`` the caller
        has already recorded the input clauses as axioms (the preprocess
        path), so the loaders skip axiom logging; derived clause additions
        and deletions are recorded either way.  Call before adding
        clauses."""
        self.proof = log
        self._proof_adopt = adopt

    # ------------------------------------------------------------------ setup

    @property
    def clauses(self) -> _ClauseView:
        """Live original clauses (a sized, iterable arena view)."""
        return _ClauseView(self)

    def new_var(self) -> int:
        v = self.num_vars
        self.num_vars += 1
        self.assigns.append(_UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(-1)
        self.activity.append(0.0)
        self.phase.append(self.config.default_phase)
        self.watches.append([])
        self.watches.append([])
        heappush(self.order_heap, (0.0, v))
        return v

    def new_vars(self, n: int) -> int:
        """Allocate ``n`` fresh variables at once; returns the first index.
        Equivalent to ``n`` :meth:`new_var` calls, minus the per-call
        bookkeeping — the bulk loaders use this."""
        if n <= 0:
            return self.num_vars
        first = self.num_vars
        self.num_vars += n
        self.assigns += [_UNASSIGNED] * n
        self.levels += [0] * n
        self.reasons += [-1] * n
        self.activity += [0.0] * n
        self.phase += [self.config.default_phase] * n
        self.watches += [[] for _ in range(2 * n)]
        # Appending preserves the heap invariant without a heapify: every
        # existing key is ``(-activity, var)`` with activity >= 0 and var <
        # first, so the new ``(0.0, v)`` entries (increasing v) compare >=
        # any possible parent.
        self.order_heap += [(0.0, v) for v in range(first, first + n)]
        return first

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause at decision level 0.  Returns ``False`` when the
        instance became trivially unsatisfiable."""
        if not self.ok:
            return False
        if self.trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        if self.proof is not None and not self._proof_adopt:
            lits = list(lits)
            self.proof.axioms.append(tuple(lits))
        assigns = self.assigns
        nv2 = 2 * self.num_vars
        out: list[int] = []
        for lit in lits:
            if not 0 <= lit < nv2:
                raise SolverError(
                    f"literal {lit} references an undeclared variable")
            v = assigns[lit >> 1]
            if v < 2:
                if v == (lit & 1):
                    return True  # already satisfied at level 0
                continue  # already false at level 0: drop the literal
            out.append(lit)
        ok = self._add_clause_clean(out)
        if self._pending_prop:
            return self._flush_units() and ok
        return ok

    def add_clauses(self, clause_iter: Iterable[Iterable[int]]) -> bool:
        """Bulk clause loading (the blast/preprocess/replay path).

        Semantically a loop of :meth:`add_clause` minus the per-literal
        range validation — callers feed machine-generated clauses whose
        literals come from this solver's own variable counter.  Unit
        propagation is deferred to the end of the batch (one propagation
        pass instead of one per derived unit); assignments are still
        visible immediately, so in-batch stripping stays sound.
        """
        if self.trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        assigns = self.assigns
        arena = self.arena
        watches = self.watches
        clean = self._add_clause_clean
        plog = self.proof if self.proof is not None and \
            not self._proof_adopt else None
        for lits in clause_iter:
            if not self.ok:
                return False
            if plog is not None:
                lits = list(lits)
                plog.axioms.append(tuple(lits))
            out: list[int] | None = []
            for lit in lits:
                v = assigns[lit >> 1]
                if v >= 2:
                    out.append(lit)
                elif v == (lit & 1):
                    out = None  # satisfied at level 0
                    break
            if out is None:
                continue
            n = len(out)
            if n < 2:
                clean(out)
                continue
            a = out[0]
            b = out[1]
            if n == 2:
                if a == b or a ^ 1 == b:
                    clean(out)  # duplicate-literal unit / tautology
                    continue
            else:
                s = set(out)
                fast = len(s) == n
                if fast:
                    for lit in out:
                        if lit ^ 1 in s:
                            fast = False
                            break
                if not fast:
                    clean(out)  # slow path: dedup / tautology
                    continue
            off = len(arena)
            arena.append(n)
            arena.append(0)
            arena += out
            w = watches[a ^ 1]
            w.append(off)
            w.append(b)
            w = watches[b ^ 1]
            w.append(off)
            w.append(a)
            self.n_orig += 1
        if self._pending_prop:
            self._flush_units()
        return self.ok

    def add_clauses_raw(self, clause_iter: Iterable[list[int]]) -> bool:
        """Bulk-load clauses that are already in stored form.

        The caller guarantees every clause has size >= 2, no duplicate or
        complementary literals, no literal assigned at level 0, and only
        declared variables — the blast-template replay path proves this
        per template at encode time.  Loading is then a pure arena append
        plus two watcher entries per clause."""
        arena = self.arena
        watches = self.watches
        plog = self.proof if self.proof is not None and \
            not self._proof_adopt else None
        n_added = 0
        for out in clause_iter:
            if plog is not None:
                plog.axioms.append(tuple(out))
            off = len(arena)
            arena.append(len(out))
            arena.append(0)
            arena += out
            a = out[0]
            b = out[1]
            w = watches[a ^ 1]
            w.append(off)
            w.append(b)
            w = watches[b ^ 1]
            w.append(off)
            w.append(a)
            n_added += 1
        self.n_orig += n_added
        return self.ok

    def add_clauses_flat(self, sizes: list[int], flat: list[int]) -> bool:
        """Bulk-load pre-sanitized clauses from a flat literal buffer.

        ``flat`` holds the concatenated literals of ``len(sizes)`` clauses
        with the same guarantees as :meth:`add_clauses_raw`.  The flat
        shape lets the blast-template replay decode a whole template in
        one list comprehension and load it here with one slice per clause.
        """
        arena = self.arena
        watches = self.watches
        if self.proof is not None and not self._proof_adopt:
            p = 0
            for n in sizes:
                self.proof.axioms.append(tuple(flat[p:p + n]))
                p += n
        off = len(arena)
        pos = 0
        for n in sizes:
            arena.append(n)
            arena.append(0)
            end = pos + n
            arena += flat[pos:end]
            a = flat[pos]
            b = flat[pos + 1]
            w = watches[a ^ 1]
            w.append(off)
            w.append(b)
            w = watches[b ^ 1]
            w.append(off)
            w.append(a)
            pos = end
            off += n + 2
        self.n_orig += len(sizes)
        return self.ok

    def _flush_units(self) -> bool:
        """Propagate units enqueued by the clause loaders; clears ``ok``
        on a level-0 conflict."""
        self._pending_prop = False
        if self._propagate() is not None:
            self.ok = False
            return False
        return True

    def _add_clause_clean(self, out: list[int]) -> bool:
        """Finish adding a clause whose level-0-assigned literals are
        already stripped: dedup, tautology check, store + watch.
        Derived units are enqueued but not propagated — callers flush via
        :meth:`_flush_units` (assignments are visible immediately either
        way)."""
        n = len(out)
        if n == 0:
            self.ok = False
            return False
        if n == 1:
            self._enqueue(out[0], -1)
            self._pending_prop = True
            return True
        if n == 2:
            a, b = out
            if a == b:
                return self._add_clause_clean([a])
            if a ^ b == 1:
                return True  # tautology
        else:
            seen = set(out)
            if len(seen) != n:
                dedup: list[int] = []
                drop = set()
                for lit in out:
                    if lit not in drop:
                        drop.add(lit)
                        dedup.append(lit)
                out = dedup
                n = len(out)
                if n == 1:
                    return self._add_clause_clean(out)
            for lit in out:
                if lit ^ 1 in seen:
                    return True  # tautology
        arena = self.arena
        off = len(arena)
        arena.append(n)
        arena.append(0)
        arena += out
        w0 = self.watches[out[0] ^ 1]
        w0.append(off)
        w0.append(out[1])
        w1 = self.watches[out[1] ^ 1]
        w1.append(off)
        w1.append(out[0])
        self.n_orig += 1
        return True

    def _add_learnt(self, lits: list[int], lbd: int) -> int:
        """Append a learned clause (size >= 2) to the arena and watch it."""
        arena = self.arena
        off = len(arena)
        arena.append(len(lits))
        arena.append(lbd if lbd > 0 else 1)
        arena += lits
        w0 = self.watches[lits[0] ^ 1]
        w0.append(off)
        w0.append(lits[1])
        w1 = self.watches[lits[1] ^ 1]
        w1.append(off)
        w1.append(lits[0])
        self.learnt_offs.append(off)
        return off

    # ------------------------------------------------------------- assignment

    def _value(self, lit: int) -> int:
        """0 = true, 1 = false, >= 2 = unassigned."""
        v = self.assigns[lit >> 1]
        return v if v >= 2 else v ^ (lit & 1)

    def root_value(self, lit: int) -> int:
        """0 / 1 when ``lit`` is forced at decision level 0, else 2.

        Root facts are permanent (never unwound by backtracking), so the
        bit-blaster may treat such literals as constants when keying and
        building circuit templates."""
        var = lit >> 1
        v = self.assigns[var]
        if v >= 2 or self.levels[var] != 0:
            return 2
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> None:
        var = lit >> 1
        assert self.assigns[var] == _UNASSIGNED
        self.assigns[var] = lit & 1
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)

    # ------------------------------------------------------------ propagation

    def _propagate(self) -> int | None:
        """Two-watched-literal unit propagation over the arena; returns the
        offset of a conflicting clause or ``None``.

        Watcher entries are (offset, blocker) pairs; the blocker — the
        other watched literal at the time the watch was placed — lets most
        satisfied clauses be skipped without touching the arena at all.
        """
        assigns = self.assigns
        watches = self.watches
        arena = self.arena
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        level = len(self.trail_lim)
        props = 0
        qhead = self.qhead
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            false_lit = lit ^ 1
            ws = watches[lit]
            if not ws:
                continue
            i = j = 0
            n = len(ws)
            while i < n:
                blocker = ws[i + 1]
                b = assigns[blocker >> 1]
                if b < 2 and b == (blocker & 1):
                    ws[j] = ws[i]
                    ws[j + 1] = blocker
                    i += 2
                    j += 2
                    continue
                off = ws[i]
                i += 2
                base = off + 2
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                if first != blocker:
                    b = assigns[first >> 1]
                    if b < 2 and b == (first & 1):
                        ws[j] = off
                        ws[j + 1] = first
                        j += 2
                        continue
                found = False
                for k in range(base + 2, base + arena[off]):
                    lk = arena[k]
                    vk = assigns[lk >> 1]
                    if vk >= 2 or vk == (lk & 1):
                        arena[base + 1] = lk
                        arena[k] = false_lit
                        wl = watches[lk ^ 1]
                        wl.append(off)
                        wl.append(first)
                        found = True
                        break
                if found:
                    continue
                ws[j] = off
                ws[j + 1] = first
                j += 2
                if b < 2:
                    # ``first`` is false: the whole clause is falsified.
                    while i < n:
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        i += 2
                        j += 2
                    del ws[j:]
                    self.qhead = qhead
                    self.stats["propagations"] += props
                    return off
                # Unit clause: imply ``first`` (inlined _enqueue).
                var = first >> 1
                assigns[var] = first & 1
                levels[var] = level
                reasons[var] = off
                trail.append(first)
                props += 1
            del ws[j:]
        self.qhead = qhead
        self.stats["propagations"] += props
        return None

    # --------------------------------------------------------------- analysis

    def _bump_var(self, var: int) -> None:
        act = self.activity[var] + self.var_inc
        self.activity[var] = act
        if act > 1e100:
            self.activity = [a * 1e-100 for a in self.activity]
            self.var_inc *= 1e-100
            self.order_heap = [(-self.activity[v], v)
                               for _, v in self.order_heap]
            heapify(self.order_heap)
        heappush(self.order_heap, (-self.activity[var], var))

    def _analyze(self, confl: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns ``(learned, backtrack_level, lbd)`` where ``learned[0]`` is
        the asserting literal and (for clauses of size > 1) ``learned[1]``
        has the highest level among the remaining literals, as the watch
        scheme requires.  ``lbd`` is the glue — the number of distinct
        decision levels among the learned literals.
        """
        arena = self.arena
        levels = self.levels
        learned: list[int] = [0]
        seen = bytearray(self.num_vars)
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)
        off = confl
        while True:
            assert off >= 0, "missing reason during conflict analysis"
            base = off + 2
            for k in range(base if lit == -1 else base + 1,
                           base + arena[off]):
                q = arena[k]
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = lit ^ 1
                break
            off = self.reasons[var]
        # Local clause minimization: a literal is redundant when its reason's
        # other literals are all already in the learned clause (seen) or at
        # level 0.
        minimized = [learned[0]]
        for q in learned[1:]:
            roff = self.reasons[q >> 1]
            if roff < 0:
                minimized.append(q)
                continue
            qv = q >> 1
            for k in range(roff + 2, roff + 2 + arena[roff]):
                r = arena[k]
                rv = r >> 1
                if rv != qv and not seen[rv] and levels[rv] > 0:
                    minimized.append(q)
                    break
        learned = minimized
        if len(learned) == 1:
            return learned, 0, 1
        max_i = 1
        for i in range(2, len(learned)):
            if levels[learned[i] >> 1] > levels[learned[max_i] >> 1]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        lbd = len({levels[q >> 1] for q in learned})
        return learned, levels[learned[1] >> 1], lbd

    def _backtrack(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        bound = self.trail_lim[level]
        for lit in reversed(self.trail[bound:]):
            var = lit >> 1
            self.phase[var] = lit & 1
            self.assigns[var] = _UNASSIGNED
            self.reasons[var] = -1
            heappush(self.order_heap, (-self.activity[var], var))
        del self.trail[bound:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # ---------------------------------------------------------------- descent

    def _pick_branch_var(self) -> int | None:
        heap = self.order_heap
        activity = self.activity
        assigns = self.assigns
        while heap:
            act, var = heappop(heap)
            if assigns[var] == _UNASSIGNED and -act == activity[var]:
                return var
        for var in range(self.num_vars):  # heap exhausted by stale entries
            if assigns[var] == _UNASSIGNED:
                heappush(heap, (-activity[var], var))
                return var
        return None

    # --------------------------------------------------- clause-DB management

    def _locked(self, off: int) -> bool:
        """Is the clause at ``off`` the reason of its implied literal?
        (The implied literal of a reason clause is always at position 0.)"""
        return self.reasons[self.arena[off + 2] >> 1] == off

    def _kill_clause(self, off: int) -> None:
        """Tombstone a clause and eagerly drop its two watcher entries."""
        arena = self.arena
        size = arena[off]
        base = off + 2
        if self.proof is not None:
            self.proof.delete(tuple(arena[base: base + size]))
        for wl in (self.watches[arena[base] ^ 1],
                   self.watches[arena[base + 1] ^ 1]):
            for i in range(0, len(wl), 2):
                if wl[i] == off:
                    wl[i] = wl[-2]
                    wl[i + 1] = wl[-1]
                    del wl[-2:]
                    break
        arena[off + 1] = _DEAD
        self._wasted += size + 2

    def _reduce_db(self) -> None:
        """Glue-aware learned-clause reduction (called at level 0).

        Binary clauses, clauses with ``lbd <= _GLUE_KEEP`` and reasons of
        current (root) assignments are immortal; the remaining learned
        clauses are ranked by glue, ties broken towards keeping recent
        clauses, and the worse half is tombstoned.
        """
        arena = self.arena
        live: list[int] = []
        candidates: list[tuple[int, int, int]] = []  # (lbd, -recency, off)
        for recency, off in enumerate(self.learnt_offs):
            lbd = arena[off + 1]
            if lbd == _DEAD:
                continue
            live.append(off)
            if arena[off] > 2 and lbd > _GLUE_KEEP and not self._locked(off):
                candidates.append((lbd, -recency, off))
        candidates.sort()
        doomed = candidates[len(candidates) // 2:]
        for _, _, off in doomed:
            self._kill_clause(off)
        self.learnt_offs = [off for off in live
                            if arena[off + 1] != _DEAD]
        self.stats["deleted"] += len(doomed)
        if self._wasted * 3 > len(arena):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the arena without tombstones, remapping every offset
        held by watcher lists, reasons and the learned-clause index.
        Runs only at decision level 0."""
        arena = self.arena
        new_arena: list[int] = []
        remap: dict[int, int] = {}
        off = 0
        end = len(arena)
        while off < end:
            size = arena[off]
            lbd = arena[off + 1]
            if lbd != _DEAD:
                remap[off] = len(new_arena)
                new_arena += arena[off: off + 2 + size]
            off += size + 2
        self.arena = new_arena
        self._wasted = 0
        for lit in range(2 * self.num_vars):
            wl = self.watches[lit]
            for i in range(0, len(wl), 2):
                wl[i] = remap[wl[i]]
        reasons = self.reasons
        for var in range(self.num_vars):
            r = reasons[var]
            if r >= 0:
                # Root-level reasons may refer to since-killed clauses;
                # they are never dereferenced (analysis skips level 0).
                reasons[var] = remap.get(r, -1)
        # Tombstoned clauses may still be listed (subsumption and
        # vivification kill in place); they simply drop out here.
        self.learnt_offs = [remap[o] for o in self.learnt_offs
                            if o in remap]
        self.stats["compactions"] += 1

    def _subsume_on_the_fly(self, lits: list[int], new_off: int) -> None:
        """Let a fresh learned clause subsume recent learned clauses.

        Scans a short window of the most recently learned clauses; any
        strict superset of the new clause is tombstoned.  Bounded work per
        conflict, but catches the common pattern of successive conflicts
        re-deriving tighter cores of the same clause.
        """
        arena = self.arena
        lset = set(lits)
        n = len(lits)
        for off in self.learnt_offs[-1 - _SUBSUME_WINDOW:-1]:
            lbd = arena[off + 1]
            if lbd == _DEAD or off == new_off:
                continue
            size = arena[off]
            if size <= n or self._locked(off):
                continue
            base = off + 2
            if lset.issubset(arena[base: base + size]):
                self._kill_clause(off)
                self.stats["subsumed"] += 1

    # ----------------------------------------------------------- vivification

    def _vivify_round(self, deadline: float | None,
                      cancel: Callable[[], bool] | None) -> str:
        """One budgeted vivification pass over learned clauses at level 0.

        For each selected clause the negations of its literals are assumed
        one at a time with propagation in between; implied/falsified
        literals shorten the clause, a conflict or implied literal replaces
        it by the derived prefix.  Returns ``"ok"``, ``"cancelled"`` or
        ``"deadline"``; may set ``self.ok = False`` when a clause reduces
        to the empty clause (the instance is UNSAT at level 0).

        The cancel token and deadline are polled between clauses — the
        PR 5 cancellation contract extends into inprocessing phases, so a
        cancelled solve inside vivification still reports ``cancelled``
        and never a budget axis.
        """
        arena = self.arena
        offs = [o for o in self.learnt_offs
                if arena[o + 1] != _DEAD and arena[o] >= 3
                and not self._locked(o)]
        if not offs:
            return "ok"
        start = self._vivify_cursor % len(offs)
        props_before = self.stats["propagations"]
        examined = 0
        for idx in range(start, start + len(offs)):
            if examined >= _VIVIFY_CLAUSES or \
                    self.stats["propagations"] - props_before > _VIVIFY_PROPS:
                break
            if cancel is not None and cancel():
                self._backtrack(0)
                self.stats["cancelled"] = True
                return "cancelled"
            if deadline is not None and time.monotonic() > deadline:
                self._backtrack(0)
                return "deadline"
            off = offs[idx % len(offs)]
            examined += 1
            if arena[off + 1] == _DEAD or self._locked(off):
                continue
            if not self._vivify_clause(off):
                self._backtrack(0)
                return "ok"  # instance went UNSAT at level 0
        self._vivify_cursor = (start + examined) % max(1, len(offs))
        self._backtrack(0)
        return "ok"

    def _vivify_clause(self, off: int) -> bool:
        """Vivify one clause; returns ``False`` when the instance became
        UNSAT (``self.ok`` cleared)."""
        arena = self.arena
        size = arena[off]
        lits = arena[off + 2: off + 2 + size]
        kept: list[int] = []
        outcome: tuple | None = None
        for li in lits:
            v = self._value(li)
            if v == 0:
                if not self.trail_lim:
                    outcome = ("delete",)  # satisfied at root
                else:
                    outcome = ("replace", kept + [li])  # implied disjunction
                break
            if v == 1:
                continue  # falsified under the assumed prefix: resolve away
            kept.append(li)
            self.trail_lim.append(len(self.trail))
            self._enqueue(li ^ 1, -1)
            if self._propagate() is not None:
                outcome = ("replace", kept)  # prefix already contradictory
                break
        self._backtrack(0)
        if outcome is None:
            if len(kept) == size:
                return True  # nothing learned
            outcome = ("replace", kept)
        if outcome[0] == "delete":
            self._kill_clause(off)
            self.stats["vivified"] += 1
            return True
        new_lits = outcome[1]
        if len(new_lits) >= size:
            return True
        old_lbd = arena[off + 1]
        if self.proof is not None:
            # The shortened clause may have been derived *through* the old
            # clause, so its addition must precede the old clause's deletion.
            self.proof.add(tuple(new_lits))
        self._kill_clause(off)
        self.stats["vivified"] += 1
        self.stats["vivify_lits"] += size - len(new_lits)
        if not new_lits:
            self.ok = False
            return False
        if len(new_lits) == 1:
            self._enqueue(new_lits[0], -1)
            if self._propagate() is not None:
                self.ok = False
                return False
            return True
        self._add_learnt(new_lits, min(old_lbd, len(new_lits)))
        self.stats["learned"] += 1
        return True

    # ------------------------------------------------------------------ solve

    def _rand(self) -> float:
        """Next deterministic fraction in [0, 1) (xorshift64*)."""
        x = self._rng
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._rng = x
        return ((x * 0x2545F4914F6CDD1D) & _MASK64) / float(1 << 64)

    def _restart_budget(self, restart_num: int) -> int:
        cfg = self.config
        if cfg.restart_schedule == "geometric":
            return max(1, int(cfg.restart_base
                              * cfg.restart_factor ** (restart_num - 1)))
        return cfg.restart_base * luby(restart_num)

    def solve(self, deadline: float | None = None,
              conflict_budget: int | None = None,
              assumptions: Iterable[int] = (),
              cancel: Callable[[], bool] | None = None) -> SATResult:
        """Decide satisfiability, optionally under assumption literals.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp;
        ``conflict_budget`` caps the conflicts of *this call*.  Exceeding
        either yields :data:`SATResult.UNKNOWN` and records the binding axis
        in ``stats["budget_axis"]`` (``"time"`` or ``"conflicts"``).

        ``cancel`` is a zero-argument callable polled alongside the
        deadline (every 128 conflicts / 256 decisions, at every restart,
        and between vivification steps).  When it returns True the solve
        gives up cooperatively: the answer is :data:`SATResult.UNKNOWN`
        with ``stats["cancelled"]`` set and *no* budget axis — a cancelled
        race arm must never masquerade as budget exhaustion.

        ``assumptions`` are established as forced decisions before any
        branching; an UNSAT answer caused by them leaves ``ok`` True,
        populates :attr:`conflict_assumptions`, and the instance may be
        queried again.  State from a previous call (a satisfying trail) is
        unwound first; learned clauses persist.
        """
        self.stats.pop("budget_axis", None)
        self.stats.pop("cancelled", None)
        self._backtrack(0)
        self._assumptions = list(assumptions)
        self.conflict_assumptions = []
        if not self.ok:
            return SATResult.UNSAT
        self._pending_prop = False  # the root pass below drains the queue
        if self._propagate() is not None:
            self.ok = False
            return SATResult.UNSAT
        restart_num = 0
        start_conflicts = self.stats["conflicts"]
        max_learnts = max(2000, self.n_orig)
        while True:
            restart_num += 1
            if cancel is not None and cancel():
                self.stats["cancelled"] = True
                self._backtrack(0)
                return SATResult.UNKNOWN
            res = self._search(self._restart_budget(restart_num), deadline,
                               cancel)
            if res is not None:
                if res is not SATResult.SAT:
                    self._backtrack(0)
                if res is SATResult.UNKNOWN and \
                        not self.stats.get("cancelled"):
                    self.stats["budget_axis"] = "time"
                return res
            self.stats["restarts"] += 1
            self._backtrack(0)
            if conflict_budget is not None and \
                    self.stats["conflicts"] - start_conflicts > conflict_budget:
                self.stats["budget_axis"] = "conflicts"
                return SATResult.UNKNOWN
            if self.inprocess and \
                    self.stats["conflicts"] >= self._next_vivify:
                self._next_vivify = self.stats["conflicts"] + _VIVIFY_PERIOD
                verdict = self._vivify_round(deadline, cancel)
                if verdict == "cancelled":
                    return SATResult.UNKNOWN
                if verdict == "deadline":
                    self.stats["budget_axis"] = "time"
                    return SATResult.UNKNOWN
                if not self.ok:
                    return SATResult.UNSAT
            if len(self.learnt_offs) > max_learnts:
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

    def solve_under_assumptions(self, assumptions: Iterable[int],
                                deadline: float | None = None,
                                conflict_budget: int | None = None,
                                cancel: Callable[[], bool] | None = None
                                ) -> SATResult:
        """:meth:`solve` with the assumption argument first, for callers
        whose primary axis is the per-query assumption literal."""
        return self.solve(deadline=deadline, conflict_budget=conflict_budget,
                          assumptions=assumptions, cancel=cancel)

    def reset_to_root(self) -> None:
        """Unwind all decisions (e.g. a satisfying trail) so clauses may be
        added again.  Root-level facts and learned clauses are kept."""
        self._backtrack(0)

    def _analyze_final(self, p: int) -> list[int]:
        """The subset of the current assumptions responsible for literal
        ``p`` being false (MiniSat's ``analyzeFinal``).

        Called at the point where assumption ``p`` was found falsified, i.e.
        every decision level on the trail is an assumption level, so every
        reason-less literal above the root is an assumption decision.
        """
        arena = self.arena
        seen = bytearray(self.num_vars)
        seen[p >> 1] = 1
        out: list[int] = [p]
        bound = self.trail_lim[0] if self.trail_lim else len(self.trail)
        for lit in reversed(self.trail[bound:]):
            var = lit >> 1
            if not seen[var]:
                continue
            seen[var] = 0
            roff = self.reasons[var]
            if roff < 0:
                if var != p >> 1:
                    out.append(lit)
            else:
                for k in range(roff + 3, roff + 2 + arena[roff]):
                    q = arena[k]
                    if self.levels[q >> 1] > 0:
                        seen[q >> 1] = 1
        return out

    def _search(self, budget: int, deadline: float | None,
                cancel: Callable[[], bool] | None = None
                ) -> SATResult | None:
        """CDCL until SAT/UNSAT, ``budget`` conflicts (``None`` = restart),
        the deadline, or a cooperative cancel (``UNKNOWN``)."""
        conflicts = 0
        n_assumptions = len(self._assumptions)
        stats = self.stats
        while True:
            conflict = self._propagate()
            if conflict is not None:
                stats["conflicts"] += 1
                conflicts += 1
                if not self.trail_lim:
                    self.ok = False
                    return SATResult.UNSAT
                learned, bt_level, lbd = self._analyze(conflict)
                self._backtrack(bt_level)
                if self.proof is not None:
                    self.proof.add(tuple(learned))
                if len(learned) == 1:
                    self._enqueue(learned[0], -1)
                else:
                    off = self._add_learnt(learned, lbd)
                    stats["learned"] += 1
                    if lbd <= 2:
                        stats["glue2"] += 1
                    elif lbd <= 6:
                        stats["glue_low"] += 1
                    else:
                        stats["glue_high"] += 1
                    if self.inprocess:
                        self._subsume_on_the_fly(learned, off)
                    self._enqueue(learned[0], off)
                self.var_inc *= self.var_decay
                if conflicts >= budget:
                    return None
                if conflicts & 127 == 0:
                    if cancel is not None and cancel():
                        stats["cancelled"] = True
                        return SATResult.UNKNOWN
                    if deadline is not None and \
                            time.monotonic() > deadline:
                        return SATResult.UNKNOWN
                continue
            if stats["decisions"] & 255 == 0:
                if cancel is not None and cancel():
                    stats["cancelled"] = True
                    return SATResult.UNKNOWN
                if deadline is not None and time.monotonic() > deadline:
                    return SATResult.UNKNOWN
            if len(self.trail_lim) < n_assumptions:
                # Establish the next assumption as a forced decision.
                p = self._assumptions[len(self.trail_lim)]
                val = self._value(p)
                if val == 1:
                    # Falsified by the clauses plus earlier assumptions:
                    # UNSAT under assumptions, instance stays usable.
                    self.conflict_assumptions = self._analyze_final(p)
                    return SATResult.UNSAT
                self.trail_lim.append(len(self.trail))
                if val != 0:
                    self._enqueue(p, -1)
                continue
            var = self._pick_branch_var()
            if var is None:
                return SATResult.SAT
            stats["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            phase = self.phase[var]
            cfg = self.config
            if cfg.random_freq and cfg.seed is not None and \
                    self._rand() < cfg.random_freq:
                phase ^= 1
            self._enqueue((var << 1) | phase, -1)

    # ------------------------------------------------------------------ model

    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the satisfying assignment (valid after SAT;
        unconstrained variables complete to ``False``)."""
        val = self.assigns[var]
        return val == 0
