"""DIMACS CNF reading/writing.

Lets us dump any bit-blasted query for cross-checking with an external SAT
solver, and lets the test suite run the CDCL core against standard instances.
DIMACS literals are 1-based and signed; internal literals are 0-based and
even/odd encoded (see :mod:`repro.smt.sat.solver`).
"""

from __future__ import annotations

from typing import Iterable

from .solver import SATSolver

__all__ = ["parse_dimacs", "to_dimacs", "load_into"]


def _int_to_lit(x: int) -> int:
    var = abs(x) - 1
    return (var << 1) | (1 if x < 0 else 0)


def _lit_to_int(lit: int) -> int:
    var = (lit >> 1) + 1
    return -var if lit & 1 else var


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS text into ``(num_vars, clauses)`` with internal literal
    encoding.  Tolerates comments and missing/inconsistent headers (clauses
    are trusted over the header, as most solvers do)."""
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) >= 3:
                num_vars = int(parts[2])
            continue
        for tok in line.split():
            x = int(tok)
            if x == 0:
                clauses.append(current)
                current = []
            else:
                num_vars = max(num_vars, abs(x))
                current.append(_int_to_lit(x))
    if current:
        clauses.append(current)
    return num_vars, clauses


def to_dimacs(num_vars: int, clauses: Iterable[Iterable[int]]) -> str:
    """Render internal clauses as DIMACS text."""
    body = []
    n = 0
    for clause in clauses:
        body.append(" ".join(str(_lit_to_int(l)) for l in clause) + " 0")
        n += 1
    return "\n".join([f"p cnf {num_vars} {n}", *body]) + "\n"


def load_into(solver: SATSolver, text: str) -> bool:
    """Parse DIMACS text and add it to ``solver``; returns ``solver.ok``."""
    num_vars, clauses = parse_dimacs(text)
    while solver.num_vars < num_vars:
        solver.new_var()
    for clause in clauses:
        if not solver.add_clause(clause):
            return False
    return True
