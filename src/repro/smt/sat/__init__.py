"""A self-contained CDCL SAT solver (conflict-driven clause learning).

This package replaces the SAT core inside Z3 for our purposes: the bit-vector
layer (:mod:`repro.smt.bitblast`) reduces QF_BV queries to CNF, which this
solver decides.  Features: two-watched-literal propagation, first-UIP conflict
analysis with clause minimization, VSIDS variable activity, phase saving, Luby
restarts, activity-based learned-clause deletion, assumptions, and time /
conflict budgets (the paper's ``T.O`` rows come from these budgets).
"""

from .solver import (RESTART_SCHEDULES, STAT_COUNTER_KEYS, SATConfig,
                     SATResult, SATSolver)
from .proof import CheckedProof, ProofLog, check_proof
from .luby import luby
from .dimacs import load_into, parse_dimacs, to_dimacs

__all__ = ["RESTART_SCHEDULES", "STAT_COUNTER_KEYS", "SATConfig",
           "SATSolver", "SATResult",
           "CheckedProof", "ProofLog", "check_proof",
           "luby", "load_into", "parse_dimacs", "to_dimacs"]
