"""Hash-consed term DAG for the QF_ABV logic.

This module is the foundation of the from-scratch SMT stack that replaces Z3
(the solver the paper used, unavailable in this environment).  Terms are

* **immutable** — all fields are set at construction and never mutated;
* **interned** — structurally identical terms are the same Python object, so
  equality is identity (``is``) and hashing is ``id``-based and O(1);
* **lightly normalized** — smart constructors constant-fold and apply cheap,
  always-beneficial rewrites (``x & x -> x``, ``ite(c,a,a) -> a`` …).  The
  heavier algebraic normalization lives in :mod:`repro.smt.simplify` and
  :mod:`repro.smt.poly`.

The public surface is the set of constructor functions at the bottom of the
module (``And``, ``BVAdd``, ``Select`` …), mirroring the z3py API the paper's
tool scripted against.
"""

from __future__ import annotations

import itertools
import os
from enum import IntEnum
from typing import Any, Iterable, Iterator, Sequence

from .sorts import ARRAY, BOOL, BV, ArraySort, BitVecSort, Sort
from ..errors import SortError

__all__ = [
    "Kind", "Term",
    "TRUE", "FALSE", "BoolConst", "BoolVar", "BVVar", "ArrayVar", "BVConst", "Var",
    "Not", "And", "Or", "Xor", "Implies", "Iff", "Ite", "Eq", "Ne", "Distinct",
    "BVNeg", "BVAdd", "BVSub", "BVMul", "BVUDiv", "BVURem",
    "BVNot", "BVAnd", "BVOr", "BVXor",
    "BVShl", "BVLshr", "BVAshr",
    "ULt", "ULe", "UGt", "UGe", "SLt", "SLe", "SGt", "SGe",
    "Concat", "Extract", "ZeroExt", "SignExt",
    "Select", "Store",
    "fresh_var", "fresh_name", "fresh_scope", "iter_dag", "term_size",
    "collect", "fingerprint", "prefix_fingerprint", "common_prefix_length",
    "intern_stats", "interning_enabled",
]


def interning_enabled() -> bool:
    """Whether the global intern table is consulted (``PUGPARA_INTERN``).

    ``PUGPARA_INTERN=0`` is the differential-CI kill switch: compound
    constructor calls allocate fresh nodes, so structurally equal
    non-leaf terms are distinct objects.  Leaves (variables, constants)
    stay interned regardless — a variable's identity must follow its
    name, or scope dictionaries and substitution maps would silently
    miss.  Everything downstream stays correct with the switch off — the
    canonical query hash walks structure, and the identity-keyed memo
    tables simply stop sharing — but the blast-template and VC-template
    caches lose their identity hits, so this mode is strictly slower.
    Read once at import: flipping it mid-process would split the world
    into pre- and post-flip term identities.
    """
    return _INTERN_ENABLED


_INTERN_ENABLED = (os.environ.get("PUGPARA_INTERN") or "1").strip().lower() \
    not in ("0", "false", "off", "no")


class Kind(IntEnum):
    """Operator tags of the term language."""

    # Leaves
    TRUE = 0
    FALSE = 1
    BVCONST = 2
    VAR = 3
    # Boolean connectives
    NOT = 10
    AND = 11
    OR = 12
    XOR = 13
    IMPLIES = 14
    ITE = 15
    EQ = 16
    DISTINCT = 17
    # Bit-vector arithmetic
    BVNEG = 20
    BVADD = 21
    BVSUB = 22
    BVMUL = 23
    BVUDIV = 24
    BVUREM = 25
    # Bit-vector bitwise
    BVNOT = 30
    BVAND = 31
    BVOR = 32
    BVXOR = 33
    # Shifts
    BVSHL = 40
    BVLSHR = 41
    BVASHR = 42
    # Comparisons (unsigned / signed)
    BVULT = 50
    BVULE = 51
    BVSLT = 52
    BVSLE = 53
    # Structural
    CONCAT = 60
    EXTRACT = 61
    ZEXT = 62
    SEXT = 63
    # Arrays
    SELECT = 70
    STORE = 71


_COMMUTATIVE = frozenset({Kind.AND, Kind.OR, Kind.XOR, Kind.EQ,
                          Kind.BVADD, Kind.BVMUL, Kind.BVAND, Kind.BVOR, Kind.BVXOR})


class Term:
    """A node of the hash-consed term DAG.

    Attributes
    ----------
    kind:
        The operator tag.
    sort:
        The sort of the term's value.
    args:
        Child terms (a tuple, possibly empty).
    payload:
        Operator-specific data: the int value for ``BVCONST``, the name string
        for ``VAR``, ``(hi, lo)`` for ``EXTRACT``, the number of added bits for
        ``ZEXT``/``SEXT``; ``None`` otherwise.
    tid:
        A globally unique, monotonically increasing id used for canonical
        argument ordering of commutative operators.
    """

    # ``_fp`` caches the structural fingerprint (:func:`fingerprint`);
    # ``_vm`` caches the variable-occurrence bloom mask used by
    # :func:`repro.smt.substitute.substitute` to skip key-free subtrees.
    # Both are derived purely from the node (structure, or the node's own
    # ``tid``), so sharing them across every context that reaches the
    # same interned node — including different ``fresh_scope``s — is
    # sound; keeping them on the node (not in module-global dicts) means
    # they cannot outlive the term.
    __slots__ = ("kind", "sort", "args", "payload", "tid", "_fp", "_vm")

    _intern: dict[tuple, "Term"] = {}
    _counter = itertools.count()
    _hits = 0       # intern-table hits since process start
    _misses = 0     # nodes allocated since process start

    def __new__(cls, kind: Kind, sort: Sort, args: tuple["Term", ...] = (),
                payload: Any = None) -> "Term":
        # Leaves (variables, constants) are ALWAYS interned: a variable's
        # identity must follow its name — scope dictionaries and
        # substitution maps key on the term a second construction of the
        # same name returns.  The kill switch only disables *structural*
        # sharing of compound nodes, which is the optimization part.
        if _INTERN_ENABLED or not args:
            key = (kind, sort, args, payload)
            cached = cls._intern.get(key)
            if cached is not None:
                cls._hits += 1
                return cached
        obj = super().__new__(cls)
        obj.kind = kind
        obj.sort = sort
        obj.args = args
        obj.payload = payload
        obj.tid = next(cls._counter)
        obj._fp = None
        obj._vm = None
        cls._misses += 1
        if _INTERN_ENABLED or not args:
            cls._intern[key] = obj
        return obj

    # No ``__hash__``/``__eq__`` overrides: ``object``'s C-level identity
    # semantics are exactly what hash-consing wants, and the C slots make
    # every dict/set of terms (the memo tables of simplify, substitute,
    # bitblast, qcache) materially faster than a Python-level ``id(self)``
    # call per probe.  Structural equality IS identity for interned terms.

    def __repr__(self) -> str:
        from .printer import to_str  # local import to avoid a cycle
        return to_str(self)

    # -- convenience predicates -------------------------------------------------
    def is_const(self) -> bool:
        """True for Boolean and bit-vector literals."""
        return self.kind in (Kind.TRUE, Kind.FALSE, Kind.BVCONST)

    def is_true(self) -> bool:
        return self.kind == Kind.TRUE

    def is_false(self) -> bool:
        return self.kind == Kind.FALSE

    def is_var(self) -> bool:
        return self.kind == Kind.VAR

    @property
    def value(self) -> int:
        """The concrete value of a constant term (bool as 0/1)."""
        if self.kind == Kind.BVCONST:
            return self.payload
        if self.kind == Kind.TRUE:
            return 1
        if self.kind == Kind.FALSE:
            return 0
        raise ValueError(f"not a constant term: {self!r}")

    @property
    def name(self) -> str:
        if self.kind != Kind.VAR:
            raise ValueError(f"not a variable: {self!r}")
        return self.payload

    @property
    def width(self) -> int:
        """Bit width of a bit-vector term."""
        if not isinstance(self.sort, BitVecSort):
            raise SortError(f"term has no width (sort {self.sort!r})")
        return self.sort.width

    # -- operator sugar (used heavily by the encoders) ---------------------------
    def __add__(self, other: "Term | int") -> "Term":
        return BVAdd(self, _coerce(other, self.sort))

    def __sub__(self, other: "Term | int") -> "Term":
        return BVSub(self, _coerce(other, self.sort))

    def __mul__(self, other: "Term | int") -> "Term":
        return BVMul(self, _coerce(other, self.sort))

    def __and__(self, other: "Term") -> "Term":
        if self.sort is BOOL:
            return And(self, other)
        return BVAnd(self, _coerce(other, self.sort))

    def __or__(self, other: "Term") -> "Term":
        if self.sort is BOOL:
            return Or(self, other)
        return BVOr(self, _coerce(other, self.sort))

    def __xor__(self, other: "Term") -> "Term":
        if self.sort is BOOL:
            return Xor(self, other)
        return BVXor(self, _coerce(other, self.sort))

    def __invert__(self) -> "Term":
        return Not(self) if self.sort is BOOL else BVNot(self)

    def __lshift__(self, other: "Term | int") -> "Term":
        return BVShl(self, _coerce(other, self.sort))

    def __rshift__(self, other: "Term | int") -> "Term":
        return BVLshr(self, _coerce(other, self.sort))

    def __getitem__(self, index: "Term | int") -> "Term":
        if isinstance(self.sort, ArraySort):
            return Select(self, _coerce(index, self.sort.index_sort))
        raise SortError(f"cannot index non-array term {self!r}")

    def eq(self, other: "Term | int") -> "Term":
        return Eq(self, _coerce(other, self.sort))

    def ult(self, other: "Term | int") -> "Term":
        return ULt(self, _coerce(other, self.sort))

    def ule(self, other: "Term | int") -> "Term":
        return ULe(self, _coerce(other, self.sort))


def _coerce(value: "Term | int", sort: Sort) -> Term:
    """Lift a Python int to a constant of ``sort``; pass terms through."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool) and sort is BOOL:
        return TRUE if value else FALSE
    if isinstance(value, int) and isinstance(sort, BitVecSort):
        return BVConst(value, sort.width)
    raise SortError(f"cannot coerce {value!r} to sort {sort!r}")


# -- leaves ----------------------------------------------------------------------

TRUE: Term = Term(Kind.TRUE, BOOL)
FALSE: Term = Term(Kind.FALSE, BOOL)


def BoolConst(value: bool) -> Term:
    return TRUE if value else FALSE


def BVConst(value: int, width: int) -> Term:
    """A bit-vector literal; ``value`` is reduced modulo ``2**width``."""
    sort = BV(width)
    return Term(Kind.BVCONST, sort, (), sort.clip(value))


def Var(name: str, sort: Sort) -> Term:
    """A free variable.  Same (name, sort) pair -> same term."""
    return Term(Kind.VAR, sort, (), name)


def BoolVar(name: str) -> Term:
    return Var(name, BOOL)


def BVVar(name: str, width: int) -> Term:
    return Var(name, BV(width))


def ArrayVar(name: str, index_width: int, elem_width: int) -> Term:
    return Var(name, ARRAY(index_width, elem_width))


_fresh_counter = itertools.count()


def fresh_name(hint: str = "k") -> str:
    """A unique-within-scope variable name with the given prefix."""
    return f"{hint}!{next(_fresh_counter)}"


class fresh_scope:
    """Reset the fresh-name counter for the duration of a ``with`` block.

    Each top-level check enters a scope, so two structurally identical
    verification runs generate *identical* fresh names — hence identical
    (interned) terms — and their queries collide in the canonical query
    cache instead of merely being alpha-equivalent.  Scopes restore the
    enclosing counter on exit, so nested or subsequent scopes never clash
    with names minted outside them.

    Interaction with interning: a term minted in one scope and re-minted
    (same structure) in a later scope is the *same object* — that sharing
    is what the VC-template cache and the canonical query cache rely on.
    It is sound only because every per-node cache slot (the ``_fp``
    fingerprint) is a pure function of structure; nothing scope-local may
    ever be stored on a term.  ``tests/smt/test_interning.py`` pins this
    invariant.
    """

    def __init__(self, start: int = 0) -> None:
        self.start = start
        self._saved = None

    def __enter__(self) -> "fresh_scope":
        global _fresh_counter
        self._saved = _fresh_counter
        _fresh_counter = itertools.count(self.start)
        return self

    def __exit__(self, *exc) -> None:
        global _fresh_counter
        _fresh_counter = self._saved


def fresh_var(hint: str, sort: Sort) -> Term:
    """A brand-new variable never returned before (used for CA instantiation)."""
    return Var(fresh_name(hint), sort)


# -- boolean connectives -----------------------------------------------------------


def _require_bool(*terms: Term) -> None:
    for t in terms:
        if t.sort is not BOOL:
            raise SortError(f"expected Bool operand, got {t.sort!r}")


def Not(a: Term) -> Term:
    _require_bool(a)
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.kind == Kind.NOT:
        return a.args[0]
    return Term(Kind.NOT, BOOL, (a,))


def _nary_bool(kind: Kind, terms: Sequence[Term], neutral: Term, dominant: Term) -> Term:
    """Shared builder for AND/OR: flatten, fold, dedup, sort, detect x & ~x."""
    flat: list[Term] = []
    for t in terms:
        _require_bool(t)
        if t is dominant:
            return dominant
        if t is neutral:
            continue
        if t.kind == kind:
            flat.extend(t.args)
        else:
            flat.append(t)
    # dedup while keeping canonical (tid) order
    seen: set[Term] = set()
    out: list[Term] = []
    for t in sorted(flat, key=lambda t: t.tid):
        if t in seen:
            continue
        seen.add(t)
        out.append(t)
    # x and not(x)
    for t in out:
        if t.kind == Kind.NOT and t.args[0] in seen:
            return dominant
    if not out:
        return neutral
    if len(out) == 1:
        return out[0]
    return Term(kind, BOOL, tuple(out))


def And(*terms: Term) -> Term:
    return _nary_bool(Kind.AND, terms, TRUE, FALSE)


def Or(*terms: Term) -> Term:
    return _nary_bool(Kind.OR, terms, FALSE, TRUE)


def Xor(a: Term, b: Term) -> Term:
    _require_bool(a, b)
    if a is b:
        return FALSE
    if a is FALSE:
        return b
    if b is FALSE:
        return a
    if a is TRUE:
        return Not(b)
    if b is TRUE:
        return Not(a)
    if a.tid > b.tid:
        a, b = b, a
    return Term(Kind.XOR, BOOL, (a, b))


def Implies(a: Term, b: Term) -> Term:
    _require_bool(a, b)
    if a is TRUE:
        return b
    if a is FALSE or b is TRUE:
        return TRUE
    if b is FALSE:
        return Not(a)
    if a is b:
        return TRUE
    return Term(Kind.IMPLIES, BOOL, (a, b))


def Iff(a: Term, b: Term) -> Term:
    return Eq(a, b)


def Ite(cond: Term, then: Term, els: Term) -> Term:
    _require_bool(cond)
    if then.sort is not els.sort:
        raise SortError(f"ite branches have different sorts: {then.sort!r} vs {els.sort!r}")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then.sort is BOOL:
        if then is TRUE and els is FALSE:
            return cond
        if then is FALSE and els is TRUE:
            return Not(cond)
        if then is TRUE:
            return Or(cond, els)
        if then is FALSE:
            return And(Not(cond), els)
        if els is TRUE:
            return Or(Not(cond), then)
        if els is FALSE:
            return And(cond, then)
    if cond.kind == Kind.NOT:
        return Ite(cond.args[0], els, then)
    return Term(Kind.ITE, then.sort, (cond, then, els))


def Eq(a: Term, b: Term | int) -> Term:
    if isinstance(b, (int, bool)):
        b = _coerce(b, a.sort)
    if a.sort is not b.sort:
        raise SortError(f"cannot equate sorts {a.sort!r} and {b.sort!r}")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return BoolConst(a.value == b.value)
    if a.sort is BOOL:
        if a is TRUE:
            return b
        if b is TRUE:
            return a
        if a is FALSE:
            return Not(b)
        if b is FALSE:
            return Not(a)
    if a.tid > b.tid:
        a, b = b, a
    return Term(Kind.EQ, BOOL, (a, b))


def Ne(a: Term, b: Term | int) -> Term:
    return Not(Eq(a, b))


def Distinct(*terms: Term) -> Term:
    """Pairwise disequality, expanded eagerly (we only use small arities)."""
    out = [Ne(a, b) for a, b in itertools.combinations(terms, 2)]
    return And(*out)


# -- bit-vector helpers -------------------------------------------------------------



def _c2(a: "Term | int", b: "Term | int") -> tuple[Term, Term]:
    """Coerce int literals in mixed (Term, int) operand pairs."""
    if isinstance(a, Term):
        if not isinstance(b, Term):
            b = _coerce(b, a.sort)
    elif isinstance(b, Term):
        a = _coerce(a, b.sort)
    return a, b


def _require_bv(*terms: Term) -> BitVecSort:
    sort = terms[0].sort
    if not isinstance(sort, BitVecSort):
        raise SortError(f"expected bit-vector operand, got {sort!r}")
    for t in terms[1:]:
        if t.sort is not sort:
            raise SortError(f"bit-vector width mismatch: {sort!r} vs {t.sort!r}")
    return sort


def _bv_binop(kind: Kind, a: Term, b: Term, fold) -> Term:
    sort = _require_bv(a, b)
    if a.kind == Kind.BVCONST and b.kind == Kind.BVCONST:
        return BVConst(fold(a.payload, b.payload, sort), sort.width)
    if kind in _COMMUTATIVE and a.tid > b.tid:
        a, b = b, a
    return Term(kind, sort, (a, b))


def BVNeg(a: Term) -> Term:
    sort = _require_bv(a)
    if a.kind == Kind.BVCONST:
        return BVConst(-a.payload, sort.width)
    if a.kind == Kind.BVNEG:
        return a.args[0]
    return Term(Kind.BVNEG, sort, (a,))


def BVAdd(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if a.kind == Kind.BVCONST and a.payload == 0:
        return b
    if b.kind == Kind.BVCONST and b.payload == 0:
        return a
    return _bv_binop(Kind.BVADD, a, b, lambda x, y, s: x + y)


def BVSub(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST and b.payload == 0:
        return a
    if a is b:
        return BVConst(0, sort.width)
    return _bv_binop(Kind.BVSUB, a, b, lambda x, y, s: x - y)


def BVMul(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    for x, y in ((a, b), (b, a)):
        if x.kind == Kind.BVCONST:
            if x.payload == 0:
                return BVConst(0, sort.width)
            if x.payload == 1:
                return y
    return _bv_binop(Kind.BVMUL, a, b, lambda x, y, s: x * y)


def BVUDiv(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST:
        if b.payload == 1:
            return a
        if b.payload != 0 and b.payload & (b.payload - 1) == 0:
            # Power-of-two divisor: rewrite to a logical shift right, which
            # bit-blasts to wires instead of a division circuit.
            return BVLshr(a, BVConst(b.payload.bit_length() - 1, sort.width))
    # SMT-LIB semantics: x udiv 0 = all-ones.
    return _bv_binop(Kind.BVUDIV, a, b,
                     lambda x, y, s: s.mask if y == 0 else x // y)


def BVURem(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST:
        if b.payload == 1:
            return BVConst(0, sort.width)
        if b.payload != 0 and b.payload & (b.payload - 1) == 0:
            # Power-of-two modulus: rewrite to a bitwise mask.
            return BVAnd(a, BVConst(b.payload - 1, sort.width))
    # SMT-LIB semantics: x urem 0 = x.
    return _bv_binop(Kind.BVUREM, a, b, lambda x, y, s: x if y == 0 else x % y)


def BVNot(a: Term) -> Term:
    sort = _require_bv(a)
    if a.kind == Kind.BVCONST:
        return BVConst(~a.payload, sort.width)
    if a.kind == Kind.BVNOT:
        return a.args[0]
    return Term(Kind.BVNOT, sort, (a,))


def BVAnd(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if x.kind == Kind.BVCONST:
            if x.payload == 0:
                return BVConst(0, sort.width)
            if x.payload == sort.mask:
                return y
    return _bv_binop(Kind.BVAND, a, b, lambda x, y, s: x & y)


def BVOr(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if x.kind == Kind.BVCONST:
            if x.payload == 0:
                return y
            if x.payload == sort.mask:
                return BVConst(sort.mask, sort.width)
    return _bv_binop(Kind.BVOR, a, b, lambda x, y, s: x | y)


def BVXor(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if a is b:
        return BVConst(0, sort.width)
    for x, y in ((a, b), (b, a)):
        if x.kind == Kind.BVCONST and x.payload == 0:
            return y
    return _bv_binop(Kind.BVXOR, a, b, lambda x, y, s: x ^ y)


def BVShl(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST:
        if b.payload == 0:
            return a
        if b.payload >= sort.width:
            return BVConst(0, sort.width)
    if a.kind == Kind.BVCONST and a.payload == 0:
        return a
    return _bv_binop(Kind.BVSHL, a, b,
                     lambda x, y, s: 0 if y >= s.width else x << y)


def BVLshr(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST:
        if b.payload == 0:
            return a
        if b.payload >= sort.width:
            return BVConst(0, sort.width)
    if a.kind == Kind.BVCONST and a.payload == 0:
        return a
    return _bv_binop(Kind.BVLSHR, a, b,
                     lambda x, y, s: 0 if y >= s.width else x >> y)


def BVAshr(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST and b.payload == 0:
        return a

    def fold(x: int, y: int, s: BitVecSort) -> int:
        xs = s.to_signed(x)
        return xs >> min(y, s.width - 1)

    return _bv_binop(Kind.BVASHR, a, b, fold)


# -- comparisons ----------------------------------------------------------------------


def _bv_cmp(kind: Kind, a: Term, b: Term, fold) -> Term:
    sort = _require_bv(a, b)
    if a is b:
        # x < x is false; x <= x is true
        return BoolConst(kind in (Kind.BVULE, Kind.BVSLE))
    if a.kind == Kind.BVCONST and b.kind == Kind.BVCONST:
        return BoolConst(fold(a.payload, b.payload, sort))
    return Term(kind, BOOL, (a, b))


def ULt(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if b.kind == Kind.BVCONST and b.payload == 0:
        return FALSE
    if a.kind == Kind.BVCONST and a.payload == sort.mask:
        return FALSE
    return _bv_cmp(Kind.BVULT, a, b, lambda x, y, s: x < y)


def ULe(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    sort = _require_bv(a, b)
    if a.kind == Kind.BVCONST and a.payload == 0:
        return TRUE
    if b.kind == Kind.BVCONST and b.payload == sort.mask:
        return TRUE
    return _bv_cmp(Kind.BVULE, a, b, lambda x, y, s: x <= y)


def UGt(a: Term, b: Term) -> Term:
    return ULt(b, a)


def UGe(a: Term, b: Term) -> Term:
    return ULe(b, a)


def SLt(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    return _bv_cmp(Kind.BVSLT, a, b, lambda x, y, s: s.to_signed(x) < s.to_signed(y))


def SLe(a: "Term | int", b: "Term | int") -> Term:
    a, b = _c2(a, b)
    return _bv_cmp(Kind.BVSLE, a, b, lambda x, y, s: s.to_signed(x) <= s.to_signed(y))


def SGt(a: Term, b: Term) -> Term:
    return SLt(b, a)


def SGe(a: Term, b: Term) -> Term:
    return SLe(b, a)


# -- structural -----------------------------------------------------------------------


def Concat(hi: Term, lo: Term) -> Term:
    hs = _require_bv(hi)
    ls = _require_bv(lo)
    if hi.kind == Kind.BVCONST and lo.kind == Kind.BVCONST:
        return BVConst((hi.payload << ls.width) | lo.payload, hs.width + ls.width)
    return Term(Kind.CONCAT, BV(hs.width + ls.width), (hi, lo))


def Extract(a: Term, hi: int, lo: int) -> Term:
    sort = _require_bv(a)
    if not (0 <= lo <= hi < sort.width):
        raise SortError(f"extract [{hi}:{lo}] out of range for width {sort.width}")
    width = hi - lo + 1
    if width == sort.width:
        return a
    if a.kind == Kind.BVCONST:
        return BVConst(a.payload >> lo, width)
    return Term(Kind.EXTRACT, BV(width), (a,), (hi, lo))


def ZeroExt(a: Term, extra: int) -> Term:
    sort = _require_bv(a)
    if extra == 0:
        return a
    if extra < 0:
        raise SortError("cannot zero-extend by a negative amount")
    if a.kind == Kind.BVCONST:
        return BVConst(a.payload, sort.width + extra)
    return Term(Kind.ZEXT, BV(sort.width + extra), (a,), extra)


def SignExt(a: Term, extra: int) -> Term:
    sort = _require_bv(a)
    if extra == 0:
        return a
    if extra < 0:
        raise SortError("cannot sign-extend by a negative amount")
    if a.kind == Kind.BVCONST:
        return BVConst(sort.to_signed(a.payload), sort.width + extra)
    return Term(Kind.SEXT, BV(sort.width + extra), (a,), extra)


# -- arrays ---------------------------------------------------------------------------


def Select(array: Term, index: Term) -> Term:
    if not isinstance(array.sort, ArraySort):
        raise SortError(f"select on non-array {array.sort!r}")
    index = _coerce(index, array.sort.index_sort)
    if index.sort is not array.sort.index_sort:
        raise SortError("select index sort mismatch")
    # Read-over-write with syntactically decidable index comparison.
    while array.kind == Kind.STORE:
        base, widx, wval = array.args
        if widx is index:
            return wval
        if widx.kind == Kind.BVCONST and index.kind == Kind.BVCONST:
            array = base  # definitely a different cell
            continue
        break
    return Term(Kind.SELECT, array.sort.elem_sort, (array, index))


def Store(array: Term, index: Term, value: Term) -> Term:
    if not isinstance(array.sort, ArraySort):
        raise SortError(f"store on non-array {array.sort!r}")
    index = _coerce(index, array.sort.index_sort)
    value = _coerce(value, array.sort.elem_sort)
    if index.sort is not array.sort.index_sort or value.sort is not array.sort.elem_sort:
        raise SortError("store index/value sort mismatch")
    return Term(Kind.STORE, array.sort, (array, index, value))


# -- traversal utilities ----------------------------------------------------------------


def iter_dag(*roots: Term) -> Iterator[Term]:
    """Iterate every distinct subterm reachable from ``roots`` (post-order)."""
    seen: set[Term] = set()
    stack: list[tuple[Term, bool]] = [(r, False) for r in reversed(roots)]
    while stack:
        term, expanded = stack.pop()
        if term in seen:
            continue
        if expanded:
            seen.add(term)
            yield term
        else:
            stack.append((term, True))
            for child in reversed(term.args):
                if child not in seen:
                    stack.append((child, False))


def term_size(*roots: Term) -> int:
    """Number of distinct DAG nodes reachable from ``roots``."""
    return sum(1 for _ in iter_dag(*roots))


def collect(predicate, *roots: Term) -> list[Term]:
    """All distinct subterms satisfying ``predicate``, in post-order."""
    return [t for t in iter_dag(*roots) if predicate(t)]


# -- structural fingerprints ------------------------------------------------------------


def fingerprint(term: Term) -> int:
    """A stable 128-bit structural digest of a term DAG.

    Unlike ``tid`` (an interning order, different from process to process),
    the fingerprint depends only on the term's structure — kind, sort,
    payload, and child fingerprints — so it is comparable across processes
    and runs.  The batch dispatcher uses it to group verification
    conditions that share a leading assertion (the common transition-relation
    prefix) for incremental solving.

    The digest memoizes into the node's ``_fp`` slot: earlier revisions
    kept a module-global ``dict[Term, int]`` beside the intern table,
    which a long-lived ``repro.serve`` process could only grow.  The
    slot dies with the term and costs one pointer per node.
    """
    hit = term._fp
    if hit is not None:
        return hit
    from hashlib import blake2b
    for t in iter_dag(term):
        if t._fp is not None:
            continue
        h = blake2b(digest_size=16)
        h.update(t.kind.name.encode())
        h.update(repr(t.sort).encode())
        if t.payload is not None:
            h.update(repr(t.payload).encode())
        for child in t.args:
            h.update(child._fp.to_bytes(16, "little"))
        t._fp = int.from_bytes(h.digest(), "little")
    return term._fp


def prefix_fingerprint(terms: Sequence[Term]) -> int:
    """Digest of an ordered assertion sequence (a candidate shared prefix)."""
    from hashlib import blake2b
    h = blake2b(digest_size=16)
    for t in terms:
        h.update(fingerprint(t).to_bytes(16, "little"))
    return int.from_bytes(h.digest(), "little")


def common_prefix_length(seqs: Sequence[Sequence[Term]]) -> int:
    """Length of the longest common leading run of identical assertions."""
    if not seqs:
        return 0
    limit = min(len(s) for s in seqs)
    first = seqs[0]
    n = 0
    while n < limit and all(s[n] is first[n] for s in seqs[1:]):
        n += 1
    return n


def intern_stats() -> dict[str, int]:
    """Intern-table health counters for ``stats["encode"]`` / benches.

    ``live`` is the current table size (distinct nodes alive), ``hits``
    and ``misses`` count constructor calls since process start that were
    answered from the table versus allocated.  With interning disabled
    (``PUGPARA_INTERN=0``) ``live`` stays 0 and every call is a miss.
    """
    return {"live": len(Term._intern), "hits": Term._hits,
            "misses": Term._misses}
