"""Printing of terms: a compact infix form for diagnostics and a faithful
SMT-LIB2 form for dumping queries to files (cross-checkable with any external
solver).
"""

from __future__ import annotations

from .sorts import ArraySort, BitVecSort
from .terms import Kind, Term

__all__ = ["to_str", "to_smtlib", "script_smtlib"]

_INFIX = {
    Kind.AND: "&", Kind.OR: "|", Kind.XOR: "^", Kind.IMPLIES: "=>", Kind.EQ: "==",
    Kind.BVADD: "+", Kind.BVSUB: "-", Kind.BVMUL: "*", Kind.BVUDIV: "/",
    Kind.BVUREM: "%", Kind.BVAND: "&", Kind.BVOR: "|", Kind.BVXOR: "^",
    Kind.BVSHL: "<<", Kind.BVLSHR: ">>", Kind.BVASHR: ">>a",
    Kind.BVULT: "<", Kind.BVULE: "<=", Kind.BVSLT: "<s", Kind.BVSLE: "<=s",
}


def to_str(term: Term, max_depth: int = 12) -> str:
    """Human-oriented infix rendering (used by ``repr``)."""
    if max_depth <= 0:
        return "..."
    k = term.kind
    if k == Kind.TRUE:
        return "true"
    if k == Kind.FALSE:
        return "false"
    if k == Kind.BVCONST:
        return str(term.payload)
    if k == Kind.VAR:
        return term.payload
    if k == Kind.NOT:
        return f"!{to_str(term.args[0], max_depth - 1)}"
    if k == Kind.BVNOT:
        return f"~{to_str(term.args[0], max_depth - 1)}"
    if k in (Kind.BVNEG,):
        return f"-{to_str(term.args[0], max_depth - 1)}"
    if k == Kind.ITE:
        c, t, e = (to_str(a, max_depth - 1) for a in term.args)
        return f"ite({c}, {t}, {e})"
    if k == Kind.SELECT:
        a, i = (to_str(x, max_depth - 1) for x in term.args)
        return f"{a}[{i}]"
    if k == Kind.STORE:
        a, i, v = (to_str(x, max_depth - 1) for x in term.args)
        return f"{a}[{i} := {v}]"
    if k == Kind.EXTRACT:
        hi, lo = term.payload
        return f"{to_str(term.args[0], max_depth - 1)}[{hi}:{lo}]"
    if k == Kind.ZEXT:
        return f"zext({to_str(term.args[0], max_depth - 1)}, {term.payload})"
    if k == Kind.SEXT:
        return f"sext({to_str(term.args[0], max_depth - 1)}, {term.payload})"
    if k == Kind.CONCAT:
        return f"({to_str(term.args[0], max_depth-1)} ++ {to_str(term.args[1], max_depth-1)})"
    op = _INFIX.get(k)
    if op is not None:
        inner = f" {op} ".join(to_str(a, max_depth - 1) for a in term.args)
        return f"({inner})"
    return f"{k.name}({', '.join(to_str(a, max_depth - 1) for a in term.args)})"


_SMT_OPS = {
    Kind.NOT: "not", Kind.AND: "and", Kind.OR: "or", Kind.XOR: "xor",
    Kind.IMPLIES: "=>", Kind.EQ: "=", Kind.ITE: "ite",
    Kind.BVNEG: "bvneg", Kind.BVADD: "bvadd", Kind.BVSUB: "bvsub",
    Kind.BVMUL: "bvmul", Kind.BVUDIV: "bvudiv", Kind.BVUREM: "bvurem",
    Kind.BVNOT: "bvnot", Kind.BVAND: "bvand", Kind.BVOR: "bvor", Kind.BVXOR: "bvxor",
    Kind.BVSHL: "bvshl", Kind.BVLSHR: "bvlshr", Kind.BVASHR: "bvashr",
    Kind.BVULT: "bvult", Kind.BVULE: "bvule", Kind.BVSLT: "bvslt", Kind.BVSLE: "bvsle",
    Kind.CONCAT: "concat", Kind.SELECT: "select", Kind.STORE: "store",
}


def _smt_sort(sort) -> str:
    if isinstance(sort, BitVecSort):
        return f"(_ BitVec {sort.width})"
    if isinstance(sort, ArraySort):
        return f"(Array {_smt_sort(sort.index_sort)} {_smt_sort(sort.elem_sort)})"
    return "Bool"


def _sanitize(name: str) -> str:
    """SMT-LIB symbols cannot contain '!'-free specials like '.'; quote them."""
    if all(c.isalnum() or c in "_!$" for c in name):
        return name
    return f"|{name}|"


def to_smtlib(term: Term) -> str:
    """Render one term as an SMT-LIB2 s-expression."""
    k = term.kind
    if k == Kind.TRUE:
        return "true"
    if k == Kind.FALSE:
        return "false"
    if k == Kind.BVCONST:
        return f"(_ bv{term.payload} {term.sort.width})"
    if k == Kind.VAR:
        return _sanitize(term.payload)
    if k == Kind.EXTRACT:
        hi, lo = term.payload
        return f"((_ extract {hi} {lo}) {to_smtlib(term.args[0])})"
    if k == Kind.ZEXT:
        return f"((_ zero_extend {term.payload}) {to_smtlib(term.args[0])})"
    if k == Kind.SEXT:
        return f"((_ sign_extend {term.payload}) {to_smtlib(term.args[0])})"
    op = _SMT_OPS[k]
    return f"({op} {' '.join(to_smtlib(a) for a in term.args)})"


def script_smtlib(assertions: list[Term], logic: str = "QF_ABV") -> str:
    """A complete ``(set-logic ...) ... (check-sat)`` script for ``assertions``."""
    from .terms import collect
    decls = []
    for var in collect(Term.is_var, *assertions):
        decls.append(f"(declare-fun {_sanitize(var.payload)} () {_smt_sort(var.sort)})")
    lines = [f"(set-logic {logic})"]
    lines.extend(sorted(decls))
    lines.extend(f"(assert {to_smtlib(a)})" for a in assertions)
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
