"""Portfolio arms: diversified solving strategies raced first-wins.

One verification condition can be solved many ways — the one-shot facade,
the shared-prefix incremental path, either with or without the SatELite
CNF preprocessing pass — and each way under many CDCL heuristic
configurations (VSIDS decay, restart schedule, phase-saving polarity,
random decision seed).  Solve times across these axes differ by orders of
magnitude on the paper's benchmarks, and which combination wins is not
predictable up front.  A *portfolio* hedges: launch a small ladder of
diversified arms, take the first conclusive verdict (SAT/UNSAT), cancel
the losers.  ``UNKNOWN`` is only the portfolio's answer when *every* arm
exhausts its budget.

This module defines the arms; :mod:`repro.smt.dispatch` owns the racing —
the worker pool, the shared cancel token, the supervisor that escalates
from cooperative cancel to hard worker kill.

Soundness of first-wins: every arm decides the *same* formula (the
incremental strategy solves ``prefix ∧ residual`` with the query itself
split at the last assertion, which the incremental module's assumption
protocol keeps equisatisfiable with the one-shot conjunction), and every
arm is individually sound — SAT comes with a model over the original
terms, UNSAT from a refutation-complete CDCL run.  Racing therefore never
changes a verdict, only which (equally correct) verdict arrives first;
models may legitimately differ between arms on formulas with several
satisfying assignments, but the winner's model is always a model.

Arm 0 is always the **baseline** — the exact strategy and CDCL
configuration the non-portfolio dispatcher uses — so serial degradation
(jobs=1: arms tried sequentially with early exit) is bit-identical to
portfolio-off solving whenever the baseline answers conclusively.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .incremental import solve_group
from .model import Model
from .sat import SATConfig
from .solver import CheckResult, Solver
from .terms import Term

__all__ = ["ArmSpec", "MAX_WIDTH", "STRATEGIES", "default_ladder",
           "default_width", "effective_width", "run_arm"]

#: The recognised per-arm solving strategies.
STRATEGIES = ("oneshot", "preprocess", "incremental",
              "incremental+preprocess")

#: The widest portfolio the ladder defines (ISSUE: 2-4 arms).
MAX_WIDTH = 4

#: Environment variable selecting the default portfolio width.
PORTFOLIO_ENV = "PUGPARA_PORTFOLIO"


@dataclass(frozen=True)
class ArmSpec:
    """One diversified attempt: a solving strategy and a CDCL config."""
    name: str
    strategy: str = "oneshot"
    config: SATConfig = field(default_factory=SATConfig)

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown arm strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}")


#: The fixed diversification ladder, best-guess-first.  Arm 0 must stay the
#: baseline (see module docstring); the rest spread across both axes —
#: strategy and CDCL heuristics — so a pathology for one configuration is
#: unlikely to afflict all of them.
_LADDER: tuple[ArmSpec, ...] = (
    ArmSpec("baseline", "oneshot", SATConfig()),
    ArmSpec("inc-pre-geo", "incremental+preprocess",
            SATConfig(restart_schedule="geometric", restart_factor=1.5,
                      seed=1, random_freq=0.02)),
    ArmSpec("pre-negphase", "preprocess",
            SATConfig(var_decay=0.90, default_phase=0, seed=2,
                      random_freq=0.05)),
    ArmSpec("inc-agile", "incremental",
            SATConfig(var_decay=0.99, restart_base=50, seed=3,
                      random_freq=0.10)),
)


def default_ladder(width: int) -> list[ArmSpec]:
    """The first ``width`` arms of the ladder (clamped to 1..MAX_WIDTH)."""
    return list(_LADDER[:max(1, min(width, MAX_WIDTH))])


def default_width() -> int | None:
    """Portfolio width from ``PUGPARA_PORTFOLIO`` (None = portfolio off).

    Mirrors :func:`~repro.smt.dispatch.default_jobs`: a malformed value
    degrades to portfolio-off with a warning, never a crash.
    """
    raw = os.environ.get(PORTFOLIO_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        width = int(raw)
    except ValueError:
        warnings.warn(f"{PORTFOLIO_ENV}={raw!r} is not an integer; "
                      "portfolio solving stays off", RuntimeWarning,
                      stacklevel=2)
        return None
    if width < 2:
        return None
    return min(width, MAX_WIDTH)


def effective_width(width: int, jobs: int) -> int:
    """Clamp a requested width to the ladder and the worker pool.

    With ``jobs >= 2`` arms share the existing pool without
    oversubscription, so the race is at most ``jobs`` wide.  With
    ``jobs == 1`` there is no pool to share — the dispatcher degrades to
    *serial* mode (arms tried sequentially with early exit), where the
    full requested width stays meaningful.
    """
    width = max(1, min(width, MAX_WIDTH))
    if jobs >= 2:
        width = min(width, jobs)
    return width


def run_arm(spec: ArmSpec, terms: Sequence[Term], *,
            timeout: float | None, conflict_budget: int | None,
            do_simplify: bool = True, validate_models: bool = False,
            cancel: Callable[[], bool] | None = None,
            certify: bool = False
            ) -> tuple[CheckResult, Model | None, dict]:
    """Solve one query with one arm's strategy and CDCL configuration.

    The incremental strategies route through
    :func:`~repro.smt.incremental.solve_group` with the query split at its
    last assertion (prefix = all but the last, residual = the last), which
    exercises the assumption-literal machinery on a genuinely different
    CNF than the one-shot blast; queries too short to split degrade to
    one-shot.  ``cancel`` reaches the CDCL loop of every strategy.

    With ``certify`` each arm proof-checks its own UNSAT answers; an arm
    whose proof is rejected answers UNKNOWN, so first-wins never crowns a
    lying arm — a proof-failing arm is a faulted arm, never a verdict.
    """
    strategy = spec.strategy
    if strategy.startswith("incremental") and len(terms) >= 2:
        group = solve_group(
            list(terms[:-1]), [list(terms[-1:])],
            timeouts=[timeout], conflict_budgets=[conflict_budget],
            do_simplify=do_simplify,
            preprocess=strategy.endswith("preprocess"),
            validate_models=validate_models,
            originals=[list(terms)],
            sat_config=spec.config, cancel=cancel, certify=certify)
        verdict, model, stats = group[0]
    else:
        solver = Solver(timeout=timeout, conflict_budget=conflict_budget,
                        do_simplify=do_simplify,
                        validate_models=validate_models,
                        preprocess=strategy.endswith("preprocess"),
                        sat_config=spec.config, cancel=cancel,
                        certify=certify)
        solver.add(*terms)
        verdict = solver.check()
        model = solver.model() if verdict is CheckResult.SAT else None
        stats = dict(solver.stats)
    stats = dict(stats)
    stats["strategy"] = strategy
    return verdict, model, stats
