"""Word-level rewriting ahead of bit-blasting.

The blast pipeline's cost is dominated by a handful of circuit families —
restoring dividers are quadratic in width, multipliers close behind — so
removing one word-level operator node routinely saves tens of thousands of
clauses.  This module holds the *contextual* rewrite layer that
:mod:`repro.smt.simplify` applies on top of its local normalizations:

* **Fact harvesting** (:func:`harvest_facts`) scans the top-level conjuncts
  of a query for shapes that pin a term into a useful value class.  The
  flagship fact is ``(t & (t - 1)) == 0`` — the standard power-of-two test
  emitted by the kernel loop abstraction for every barrier-loop iterator —
  which proves ``t`` is *zero or a power of two* ("zpow2").  Matching goes
  through the polynomial engine (:mod:`repro.smt.poly`), so both the raw
  ``t - 1`` and its normalized ``t + (2^w - 1)`` spelling are recognized.

* **Value-class closure** (:meth:`Facts.is_zpow2`): products and left
  shifts of zpow2 terms are zpow2 (a power of two times a power of two is
  a power of two or wraps to zero, and zero absorbs), as is ``t + t``.

* **Rewrite rules** (:func:`rewrite_node`), applied bottom-up by the
  simplifier to nodes whose children are already simplified:

  - ``x urem m  ->  x & (m - 1)`` when ``m`` is zpow2.  Valid for *every*
    model of the query: on models satisfying the harvested facts ``m`` is
    ``0`` (both sides equal ``x`` — SMT-LIB fixes ``x urem 0 = x`` and
    ``x & (0 - 1) = x``) or ``2^j`` (the usual mask identity); on models
    falsifying the facts the whole conjunction is false either way, since
    the fact conjuncts themselves remain asserted.  This replaces a
    ``7*w^2``-gate restoring divider with ``w`` AND gates — the single
    biggest lever on the reduction-kernel benchmarks, whose race VCs
    modulo by the symbolic loop stride ``2*k``.
  - ``ite(c, a, b) == d`` collapses against a branch: ``d is a`` gives
    ``c | (b == d)``, ``d is b`` gives ``~c | (a == d)``; and when either
    branch comparison folds to a constant the equality distributes over
    the ite.  These discharge the barrier-round case splits the encoders
    emit without ever reaching the CNF.

Every rule is model-preserving on the query it was harvested from; a
:class:`Facts` base must therefore only be applied to terms asserted in
the *same* conjunction (the incremental group solver harvests from the
shared prefix only, which is part of every member query).

Structural hashing of repeated subterms is inherited from the interned
term DAG (:mod:`repro.smt.terms`): identical subterms are identical Python
objects, so every cache in this layer is an identity-keyed dict.  The
corresponding blast-level strength reductions (constant shifts as wire
slices, constant multipliers as shift-adds) live in
:mod:`repro.smt.bitblast`; the cross-query circuit reuse lives in the
shared blast cache (:mod:`repro.smt.blastcache`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .poly import normalize_arith, normalize_eq, poly_add, poly_neg, poly_of
from .sorts import BitVecSort
from .terms import BVAnd, BVConst, BVSub, Eq, Ite, Kind, Not, Or, Term

__all__ = ["Facts", "harvest_facts", "rewrite_node"]


class Facts:
    """Harvested per-query context for conditional rewrites.

    ``zpow2`` holds terms proven *zero-or-power-of-two* by an asserted
    top-level conjunct.  :meth:`is_zpow2` extends it through the closure
    rules (constants, products, shifts, doubling) with an identity-keyed
    memo, so repeated queries over a shared modulus term cost one walk.
    """

    __slots__ = ("zpow2", "_memo")

    def __init__(self, zpow2: Iterable[Term] = ()) -> None:
        self.zpow2: frozenset[Term] = frozenset(zpow2)
        self._memo: dict[Term, bool] = {}

    def __bool__(self) -> bool:
        return bool(self.zpow2)

    def is_zpow2(self, t: Term) -> bool:
        """Is ``t`` provably zero or a power of two under these facts?"""
        hit = self._memo.get(t)
        if hit is not None:
            return hit
        out = self._decide_zpow2(t)
        self._memo[t] = out
        return out

    def _decide_zpow2(self, t: Term) -> bool:
        if t in self.zpow2:
            return True
        k = t.kind
        if k == Kind.BVCONST:
            v = t.payload
            return v == 0 or (v & (v - 1)) == 0
        if k == Kind.BVMUL:
            return all(self.is_zpow2(a) for a in t.args)
        if k == Kind.BVSHL:
            return self.is_zpow2(t.args[0])
        if k == Kind.BVADD and len(t.args) == 2 and t.args[0] is t.args[1]:
            return self.is_zpow2(t.args[0])  # t + t == 2*t
        return False


#: Shared empty fact base (used when harvesting finds nothing).
NO_FACTS = Facts()


def _iter_conjuncts(terms: Sequence[Term]):
    """Top-level conjuncts of an assertion list (AND nodes flattened)."""
    stack = list(terms)
    while stack:
        t = stack.pop()
        if t.kind == Kind.AND:
            stack.extend(t.args)
        else:
            yield t


def _is_decrement(y: Term, x: Term) -> bool:
    """Does ``y`` denote ``x - 1`` modulo the width?  Decided through the
    polynomial engine, so any syntactic spelling (``x - 1``,
    ``x + (2^w - 1)``, a normalized form) matches."""
    sort = x.sort
    if not isinstance(sort, BitVecSort) or y.sort is not sort:
        return False
    if y.kind == Kind.BVSUB and y.args == (x, BVConst(1, sort.width)):
        return True
    diff = poly_add(poly_of(y), poly_neg(poly_of(x), sort.modulus),
                    sort.modulus)
    return diff == {(): sort.modulus - 1}


def _zpow2_of_conjunct(f: Term) -> Term | None:
    """The term a conjunct proves zero-or-power-of-two, if any.

    Matches ``(t & (t - 1)) == 0`` with the AND and EQ argument orders
    both ways (smart constructors sort commutative arguments by term id).
    """
    if f.kind != Kind.EQ:
        return None
    a, b = f.args
    for lhs, rhs in ((a, b), (b, a)):
        if rhs.kind != Kind.BVCONST or rhs.payload != 0:
            continue
        if lhs.kind != Kind.BVAND or len(lhs.args) != 2:
            continue
        p, q = lhs.args
        if _is_decrement(q, p):
            return p
        if _is_decrement(p, q):
            return q
    return None


def harvest_facts(terms: Sequence[Term]) -> Facts:
    """Scan a query's assertion list for rewrite-enabling facts.

    Only *positive top-level conjuncts* are consulted — a fact buried
    under a negation or disjunction does not hold unconditionally in the
    query and must not license a rewrite.
    """
    zpow2 = []
    for f in _iter_conjuncts(terms):
        t = _zpow2_of_conjunct(f)
        if t is not None:
            zpow2.append(t)
    return Facts(zpow2) if zpow2 else NO_FACTS


# --------------------------------------------------------------------- rules


def _mask_of(m: Term) -> Term:
    """``m - 1`` — the AND mask for a zpow2 modulus, pre-normalized so the
    rewriter's output matches what a re-simplification would produce
    (keeps the simplifier idempotent on rewritten terms)."""
    return normalize_arith(BVSub(m, BVConst(1, m.sort.width)))


def _norm_eq(a: Term, b: Term) -> Term:
    """An equality in the simplifier's canonical form."""
    if isinstance(a.sort, BitVecSort):
        lhs, rhs = normalize_eq(a, b)
        return Eq(lhs, rhs)
    return Eq(a, b)


def rewrite_node(t: Term, facts: Facts) -> Term:
    """Apply the word-level rules to one node whose children are already
    simplified.  Returns ``t`` itself when no rule fires; rewritten
    results are built with smart constructors from already-simplified,
    pre-normalized parts, so the caller needs no second pass."""
    k = t.kind
    if k == Kind.BVUREM:
        x, m = t.args
        if facts.is_zpow2(m):
            return BVAnd(x, _mask_of(m))
        return t
    if k == Kind.EQ:
        a, b = t.args
        for ite, other in ((a, b), (b, a)):
            if ite.kind != Kind.ITE or ite.sort.is_bool():
                continue
            cond, then, els = ite.args
            if other is then:
                return Or(cond, _norm_eq(els, other))
            if other is els:
                return Or(Not(cond), _norm_eq(then, other))
            then_eq = _norm_eq(then, other)
            els_eq = _norm_eq(els, other)
            if then_eq.is_const() or els_eq.is_const():
                return Ite(cond, then_eq, els_eq)
        return t
    return t
