"""Polynomial normal form for bit-vector arithmetic.

The parameterized encoder's verification conditions are dominated by address
equalities such as

    X(t.x) * height + Y(t.y)  ==  X(t.x) * height + Y(t.y)

(non-linear in the symbolic ``height``).  The Omega test the paper contrasts
with (Section IV, "Contrast with Omega Tests") handles only linear arithmetic;
the paper's answer is SMT.  Our answer is the same, but we add this normalizer
so that the *syntactically equal-after-distribution* cases — the common case
for memory-coalescing optimizations — are discharged without touching the SAT
core at all.

A polynomial over width-``w`` bit-vectors is a mapping

    monomial -> coefficient (mod 2**w)

where a *monomial* is a sorted tuple of atom terms (atoms are terms opaque to
arithmetic: variables, selects, ites, divisions...).  Addition, subtraction,
negation, multiplication, and left-shift-by-constant are interpreted; all
bit-vector identities used are valid modulo ``2**w``, so the normal form is
sound for any width.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .sorts import BitVecSort
from .terms import BVConst, BVAdd, BVMul, BVNeg, Kind, Term

__all__ = ["Poly", "poly_of", "poly_to_term", "normalize_arith", "normalize_eq",
           "split_linear"]

Monomial = Tuple[Term, ...]
Poly = Dict[Monomial, int]

_ONE: Monomial = ()


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    return tuple(sorted(a + b, key=lambda t: t.tid))


def _add_into(dst: Poly, mono: Monomial, coeff: int, modulus: int) -> None:
    c = (dst.get(mono, 0) + coeff) % modulus
    if c:
        dst[mono] = c
    else:
        dst.pop(mono, None)


def poly_add(a: Poly, b: Poly, modulus: int) -> Poly:
    out = dict(a)
    for mono, coeff in b.items():
        _add_into(out, mono, coeff, modulus)
    return out


def poly_neg(a: Poly, modulus: int) -> Poly:
    return {m: (-c) % modulus for m, c in a.items()}


def poly_scale(a: Poly, k: int, modulus: int) -> Poly:
    k %= modulus
    if k == 0:
        return {}
    out: Poly = {}
    for m, c in a.items():
        _add_into(out, m, c * k, modulus)
    return out


def poly_mul(a: Poly, b: Poly, modulus: int) -> Poly:
    out: Poly = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            _add_into(out, _mono_mul(ma, mb), ca * cb, modulus)
    return out


def poly_of(term: Term, cache: dict[Term, Poly] | None = None) -> Poly:
    """Convert a bit-vector term to its polynomial normal form.

    Sub-terms that are not arithmetic (selects, udiv, shifts by non-constants,
    ites, ...) become atoms.  The result's coefficients are reduced modulo the
    term's width.
    """
    sort = term.sort
    assert isinstance(sort, BitVecSort)
    modulus = sort.modulus
    if cache is None:
        cache = {}

    def walk(t: Term) -> Poly:
        hit = cache.get(t)
        if hit is not None:
            return hit
        k = t.kind
        if k == Kind.BVCONST:
            out: Poly = {_ONE: t.payload} if t.payload else {}
        elif k == Kind.BVADD:
            out = poly_add(walk(t.args[0]), walk(t.args[1]), modulus)
        elif k == Kind.BVSUB:
            out = poly_add(walk(t.args[0]), poly_neg(walk(t.args[1]), modulus), modulus)
        elif k == Kind.BVNEG:
            out = poly_neg(walk(t.args[0]), modulus)
        elif k == Kind.BVMUL:
            out = poly_mul(walk(t.args[0]), walk(t.args[1]), modulus)
        elif k == Kind.BVSHL and t.args[1].kind == Kind.BVCONST:
            shift = t.args[1].payload
            out = poly_scale(walk(t.args[0]), 1 << shift, modulus) if shift < sort.width else {}
        else:
            out = {(t,): 1}
        cache[t] = out
        return out

    return walk(term)


def _mono_key(item: tuple[Monomial, int]):
    mono, _ = item
    return (len(mono), tuple(t.tid for t in mono))


def poly_to_term(poly: Poly, sort: BitVecSort) -> Term:
    """Rebuild a canonical term (sorted sum of coefficient-scaled monomials)."""
    if not poly:
        return BVConst(0, sort.width)
    parts: list[Term] = []
    for mono, coeff in sorted(poly.items(), key=_mono_key):
        if mono == _ONE:
            parts.append(BVConst(coeff, sort.width))
            continue
        prod = mono[0]
        for factor in mono[1:]:
            prod = BVMul(prod, factor)
        if coeff != 1:
            prod = BVMul(BVConst(coeff, sort.width), prod)
        parts.append(prod)
    acc = parts[0]
    for p in parts[1:]:
        acc = BVAdd(acc, p)
    return acc


def normalize_arith(term: Term) -> Term:
    """Polynomial-normalize one bit-vector term (identity on non-arith atoms)."""
    if not isinstance(term.sort, BitVecSort):
        return term
    return poly_to_term(poly_of(term), term.sort)


def _signed(coeff: int, modulus: int) -> int:
    return coeff - modulus if coeff >= modulus // 2 else coeff


def normalize_eq(a: Term, b: Term) -> tuple[Term, Term]:
    """Normalize an equality between bit-vector terms.

    Computes the difference polynomial ``a - b`` and splits it into a
    positive part (monomials whose signed coefficient is positive) and a
    negated negative part, yielding the canonical pair ``(lhs, rhs)`` with
    ``lhs == rhs  <=>  a == b``.  If the difference is empty the equality is
    trivially true — callers detect this by getting two identical terms back.
    """
    sort = a.sort
    assert isinstance(sort, BitVecSort)
    modulus = sort.modulus
    diff = poly_add(poly_of(a), poly_neg(poly_of(b), modulus), modulus)
    pos: Poly = {}
    neg: Poly = {}
    for mono, coeff in diff.items():
        if _signed(coeff, modulus) >= 0:
            pos[mono] = coeff
        else:
            neg[mono] = (-coeff) % modulus
    return poly_to_term(pos, sort), poly_to_term(neg, sort)


def split_linear(term: Term, var: Term) -> tuple[Term, Term] | None:
    """Decompose ``term`` as ``a * var + b`` where neither ``a`` nor ``b``
    mentions ``var``.  Returns ``(a, b)`` or ``None`` if the term is not
    linear in ``var``.

    Used by the witness-derivation step of the parameterized equivalence
    checker: to match a source write address against a target write address
    we solve the target's (linear) address function for its thread variable.
    """
    sort = term.sort
    if not isinstance(sort, BitVecSort):
        return None
    poly = poly_of(term)
    coef: Poly = {}
    rest: Poly = {}

    def mentions(t: Term) -> bool:
        from .terms import iter_dag
        return any(s is var for s in iter_dag(t))

    for mono, c in poly.items():
        occurrences = [t for t in mono if t is var]
        others = tuple(t for t in mono if t is not var)
        if len(occurrences) == 0:
            if any(mentions(t) for t in mono):
                return None  # var occurs inside an atom: not linear
            rest[mono] = c
        elif len(occurrences) == 1:
            if any(mentions(t) for t in others):
                return None
            coef[others] = (coef.get(others, 0) + c) % sort.modulus
        else:
            return None  # quadratic in var
    return poly_to_term(coef, sort), poly_to_term(rest, sort)
