"""Wire protocol of the verification server.

One request shape serves both transports (HTTP ``POST /v1/check`` and
JSONL over stdio / a unix socket): a JSON object naming a command
(``races`` / ``equiv`` / ``func`` / ``run`` is *not* served — the server
only answers verification questions), carrying kernel source text inline,
and optionally pinning the same knobs the CLI exposes.  Validation errors
raise :class:`ProtocolError` and surface as HTTP 422 / a JSONL ``error``
object — the request never reaches a worker.

Two requests are *the same check* when they are alpha-equivalent: same
token stream after renaming every non-reserved identifier by first
encounter, same command, same knobs.  :func:`canonical_request_key`
computes that key (the in-flight dedup and response cache key) plus the
per-kernel first-encounter name lists that let
:func:`translate_counterexample` rebind a leader's counterexample to a
follower's own identifier spelling.  Reserved names — builtins the
semantics key off (``tid``/``bid``/``bdim``/``gdim``, the dimension
selectors) and any scalar the request pins by name — keep their spelling;
when a suite ``pair`` is named, renaming is skipped entirely because the
pair's assumption builder references scalars by name (conservative: two
spellings then never share a verdict, they are just solved twice).

The verdict mapping is the CLI's exit-code contract projected onto HTTP:

=============  =========  ====
verdict        HTTP       exit
=============  =========  ====
verified       200        0
bug            200        1
timeout        408        3
unknown        503        3
unsupported    503        3
(usage)        422        2
(overload)     429        3
(internal)     500        4
=============  =========  ====
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..cli import (
    EXIT_INTERNAL, EXIT_REFUTED, EXIT_UNKNOWN, EXIT_USAGE, EXIT_VERIFIED,
)
from ..lang.lexer import tokenize

__all__ = [
    "ProtocolError", "CheckRequest", "parse_request",
    "canonical_request_key", "translate_counterexample",
    "verdict_http_status", "verdict_exit_code",
    "HTTP_USAGE", "HTTP_OVERLOAD", "HTTP_INTERNAL",
]

#: Request-level statuses with no verdict behind them.
HTTP_USAGE = 422
HTTP_OVERLOAD = 429
HTTP_INTERNAL = 500

_COMMANDS = ("races", "equiv", "func")
_METHODS = ("param", "nonparam")

#: Identifiers whose spelling is semantic — never alpha-renamed.  The
#: thread/block builtins and the dimension selector fields; scalar names
#: pinned by a request are added per-request.
RESERVED_NAMES = frozenset({"tid", "bid", "bdim", "gdim", "x", "y", "z"})


class ProtocolError(ValueError):
    """A malformed request — the server answers 422, nothing is solved."""


@dataclass
class CheckRequest:
    """One parsed, validated verification request."""
    command: str                       # races | equiv | func
    source: str                        # kernel source text
    target: str | None = None          # second kernel (equiv only)
    method: str = "param"              # equiv/func: param | nonparam
    width: int = 8
    timeout: float = 60.0
    pair: str | None = None            # suite assumption pair
    bdim: tuple[int, int, int] | None = None   # nonparam launch
    gdim: tuple[int, int] | None = None
    cbdim: tuple[int, int, int] | None = None  # param concretization
    cgdim: tuple[int, int] | None = None
    scalars: dict[str, int] = field(default_factory=dict)
    validate: bool = True
    bughunt: bool = False
    certify: bool = False              # DRAT-check every UNSAT verdict
    tenant: str = "default"


def _require_str(payload: dict, name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"field {name!r} must be a non-empty string")
    return value


def _opt_dims(payload: dict, name: str, length: int) -> tuple | None:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, str):
        try:
            value = [int(x) for x in value.split(",")]
        except ValueError:
            raise ProtocolError(f"field {name!r}: not a dim list") from None
    if not isinstance(value, (list, tuple)) or not value or \
            not all(isinstance(v, int) and v >= 1 for v in value):
        raise ProtocolError(f"field {name!r} must be a list of "
                            "positive integers")
    dims = tuple(value)
    if len(dims) > length:
        raise ProtocolError(f"field {name!r} has more than {length} dims")
    while len(dims) < length:
        dims = (*dims, 1)
    return dims


def parse_request(payload: Any) -> CheckRequest:
    """Validate a decoded JSON object into a :class:`CheckRequest`.

    Every violation raises :class:`ProtocolError` with a message naming
    the offending field — the HTTP layer forwards it verbatim as the 422
    body so a client can fix the request without reading server logs.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(payload) - {
        "command", "source", "target", "method", "width", "timeout",
        "pair", "bdim", "gdim", "cbdim", "cgdim", "scalars", "validate",
        "bughunt", "certify", "tenant"}
    if unknown:
        raise ProtocolError(
            f"unknown fields: {', '.join(sorted(unknown))}")
    command = payload.get("command")
    if command not in _COMMANDS:
        raise ProtocolError(
            f"field 'command' must be one of {', '.join(_COMMANDS)}")
    source = _require_str(payload, "source")
    target = None
    if command == "equiv":
        target = _require_str(payload, "target")
    elif payload.get("target") is not None:
        raise ProtocolError("field 'target' is only valid for 'equiv'")
    method = payload.get("method", "param")
    if method not in _METHODS:
        raise ProtocolError(
            f"field 'method' must be one of {', '.join(_METHODS)}")
    if command == "races" and method != "param":
        raise ProtocolError("'races' only supports the param method")
    width = payload.get("width", 8)
    if not isinstance(width, int) or not (1 <= width <= 64):
        raise ProtocolError("field 'width' must be an integer in 1..64")
    timeout = payload.get("timeout", 60.0)
    if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
            or not (0 < float(timeout) <= 3600):
        raise ProtocolError("field 'timeout' must be a number in (0, 3600]")
    pair = payload.get("pair")
    if pair is not None and (not isinstance(pair, str) or not pair):
        raise ProtocolError("field 'pair' must be a non-empty string")
    scalars_raw = payload.get("scalars", {})
    if not isinstance(scalars_raw, dict):
        raise ProtocolError("field 'scalars' must be an object")
    scalars: dict[str, int] = {}
    for name, value in scalars_raw.items():
        if not isinstance(name, str) or not name:
            raise ProtocolError("scalar names must be non-empty strings")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(f"scalar {name!r} must be an integer")
        scalars[name] = value
    validate = payload.get("validate", True)
    bughunt = payload.get("bughunt", False)
    certify = payload.get("certify", False)
    if not isinstance(validate, bool) or not isinstance(bughunt, bool) \
            or not isinstance(certify, bool):
        raise ProtocolError(
            "'validate', 'bughunt' and 'certify' must be booleans")
    if bughunt and command != "equiv":
        raise ProtocolError("field 'bughunt' is only valid for 'equiv'")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("field 'tenant' must be a non-empty string")
    req = CheckRequest(
        command=command, source=source, target=target, method=method,
        width=width, timeout=float(timeout), pair=pair,
        bdim=_opt_dims(payload, "bdim", 3),
        gdim=_opt_dims(payload, "gdim", 2),
        cbdim=_opt_dims(payload, "cbdim", 3),
        cgdim=_opt_dims(payload, "cgdim", 2),
        scalars=scalars, validate=validate, bughunt=bughunt,
        certify=certify, tenant=tenant)
    if method == "nonparam" and req.bdim is None:
        raise ProtocolError("the nonparam method requires 'bdim'")
    return req


# --------------------------------------------------- alpha-invariant key


def _alpha_tokens(source: str,
                  reserved: frozenset[str]) -> tuple[list[str], list[str]]:
    """The source's token spellings with non-reserved identifiers renamed
    by first encounter, plus the encounter-ordered original names.

    A lexically invalid kernel falls back to the raw text (it will fail
    identically for every spelling of itself, which is all dedup needs).
    """
    try:
        tokens = tokenize(source)
    except Exception:
        return [source], []
    ordinals: dict[str, int] = {}
    names: list[str] = []
    out: list[str] = []
    for tok in tokens:
        if tok.kind == "ident" and tok.text not in reserved:
            if tok.text not in ordinals:
                ordinals[tok.text] = len(names)
                names.append(tok.text)
            out.append(f"\x00{ordinals[tok.text]}")
        else:
            out.append(f"{tok.kind}:{tok.text}")
    return out, names


def canonical_request_key(req: CheckRequest) -> tuple[str, list[list[str]]]:
    """The request's dedup key and per-kernel first-encounter name lists.

    The key folds the alpha-renamed token streams together with every
    verdict-relevant knob (tenant excluded — quota identity must not
    split the cache).  The name lists translate a leader's
    counterexample back into a follower's identifiers
    (:func:`translate_counterexample`).
    """
    if req.pair is not None:
        # Assumption builders reference scalars by name: renaming could
        # alias two kernels whose verdicts differ under the pair's
        # assumptions.  Degrade to textual identity — never false-shares.
        reserved = None
        sources = [s for s in (req.source, req.target) if s is not None]
        streams = [[s] for s in sources]
        names: list[list[str]] = [[] for _ in sources]
    else:
        reserved = RESERVED_NAMES | frozenset(req.scalars)
        streams, names = [], []
        for source in (req.source, req.target):
            if source is None:
                continue
            stream, encountered = _alpha_tokens(source, reserved)
            streams.append(stream)
            names.append(encountered)
    material = json.dumps({
        "command": req.command, "method": req.method, "width": req.width,
        "timeout": req.timeout, "pair": req.pair,
        "bdim": req.bdim, "gdim": req.gdim,
        "cbdim": req.cbdim, "cgdim": req.cgdim,
        "scalars": sorted(req.scalars.items()),
        "validate": req.validate, "bughunt": req.bughunt,
        # Certified and uncertified runs of the same check must not share
        # a response: only the former carries a proof-checked guarantee.
        "certify": req.certify,
        "streams": streams,
    }, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return key, names


def translate_counterexample(cex: dict | None, leader_names: list[list[str]],
                             follower_names: list[list[str]]) -> dict | None:
    """Rebind a leader's counterexample to a follower's identifiers.

    Alpha-equivalent kernels agree on every first-encounter ordinal, so a
    name in the leader's counterexample maps to the follower's name at
    the same ordinal.  Names outside the lists (reserved builtins, pinned
    scalars) pass through unchanged — their spelling is shared by
    construction.
    """
    if cex is None:
        return None
    mapping: dict[str, str] = {}
    for lead, follow in zip(leader_names, follower_names):
        for ordinal, name in enumerate(lead):
            if ordinal < len(follow):
                mapping[name] = follow[ordinal]
    if not mapping:
        return cex

    def rename(name: str) -> str:
        return mapping.get(name, name)

    out = dict(cex)
    if isinstance(cex.get("scalars"), dict):
        out["scalars"] = {rename(k): v for k, v in cex["scalars"].items()}
    if isinstance(cex.get("arrays"), dict):
        out["arrays"] = {rename(k): v for k, v in cex["arrays"].items()}
    return out


# ----------------------------------------------------- verdict mappings


def verdict_http_status(verdict: str) -> int:
    """HTTP status for a solved request's verdict string."""
    if verdict in ("verified", "bug"):
        return 200       # the question was answered, either way
    if verdict == "timeout":
        return 408       # budget exhausted — the paper's T.O
    return 503           # unknown / unsupported: degradation, retryable


def verdict_exit_code(verdict: str) -> int:
    """The CLI exit-code contract, for the bundled client."""
    if verdict == "verified":
        return EXIT_VERIFIED
    if verdict == "bug":
        return EXIT_REFUTED
    return EXIT_UNKNOWN


#: Exit codes re-exported for client symmetry.
EXIT_CODES = {
    "verified": EXIT_VERIFIED, "bug": EXIT_REFUTED,
    "usage": EXIT_USAGE, "inconclusive": EXIT_UNKNOWN,
    "internal": EXIT_INTERNAL,
}
