"""``python -m repro.serve`` — run the verification server."""

import sys

from .app import main

if __name__ == "__main__":
    sys.exit(main())
