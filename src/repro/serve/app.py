"""The long-lived verification server: ``python -m repro.serve``.

Two transports answer the same protocol (:mod:`repro.serve.protocol`):

* **HTTP/1.1** — ``POST /v1/check`` with a JSON body, plus ``GET
  /v1/health`` and ``GET /v1/stats``.  The HTTP layer is hand-rolled on
  ``asyncio.start_server`` (the environment bakes in no web framework,
  and the protocol needs exactly one verb); every response closes the
  connection, which keeps the parser honest and tiny.
* **JSONL** — one request object per line over stdin/stdout (``--stdio``)
  or a unix socket (``--socket PATH``); one response object per line,
  each echoing the request's ``id`` when it carries one.

Each request climbs the admission ladder:

1. **validate** — malformed requests answer 422 before touching quota or
   workers;
2. **admit** — the tenant's worst-case escalated budget is reserved
   (:mod:`repro.serve.quotas`); over quota answers 429 with
   ``Retry-After``, never a verdict, never a cache entry;
3. **dedup** — an in-flight check with the same alpha-invariant key
   (:func:`~repro.serve.protocol.canonical_request_key`) is joined, not
   re-solved: the follower awaits the leader's future and gets the
   leader's verdict with the counterexample translated back into its own
   identifier spelling;
4. **solve** — a warm worker runs the check (:mod:`repro.serve.session`);
5. **settle** — the reservation is refunded down to actual spend.

Shutdown (SIGTERM/SIGINT or EOF on stdio) is a *graceful drain*:
in-flight checks run to completion under a configurable deadline
(``--drain-seconds`` / ``PUGPARA_DRAIN_SECONDS``, default 5s) while any
request arriving after the signal answers 503 with a ``draining`` body.
When the last in-flight check settles — or the deadline expires, whichever
comes first — the listeners close, the pool dies through the dispatcher's
no-orphan teardown funnel, and the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any

from ..smt.resilience import ESCALATIONS, RetryPolicy, default_policy
from .protocol import (
    HTTP_INTERNAL, HTTP_OVERLOAD, HTTP_USAGE, ProtocolError,
    canonical_request_key, parse_request, translate_counterexample,
    verdict_exit_code, verdict_http_status,
)
from .quotas import QuotaExceeded, QuotaLedger
from .session import Session
from .shards import ensure_layout, scan_shards

__all__ = ["Server", "main"]

#: Emitted once the server is ready to accept work — e2e harnesses and
#: the CI smoke job block on this exact prefix.
READY_PREFIX = "pugpara-serve ready"


def _status_of(body: dict) -> int:
    status = body.get("status")
    if status == "usage":
        return HTTP_USAGE
    if status == "internal":
        return HTTP_INTERNAL
    return verdict_http_status(body.get("verdict", "unknown"))


def _conflicts_of(body: dict) -> int:
    solver = body.get("stats") or {}
    if isinstance(solver, dict):
        solver = solver.get("solver") or {}
    try:
        return int(solver.get("conflicts", 0) or 0)
    except (TypeError, ValueError, AttributeError):
        return 0


class Server:
    """Transport-independent request processing plus the two listeners."""

    def __init__(self, session: Session, ledger: QuotaLedger,
                 policy: RetryPolicy | None = None) -> None:
        self.session = session
        self.ledger = ledger
        self.policy = policy or default_policy()
        self._inflight: dict[str, tuple[asyncio.Future, list]] = {}
        self.stats: dict[str, Any] = {
            "requests": 0, "deduped": 0, "rejected": 0, "usage_errors": 0,
            "internal_errors": 0, "drain_rejected": 0, "certified": 0,
            "verdicts": {},
        }
        self.closing = asyncio.Event()
        self.cache_report: dict | None = None  # startup migration report
        self._active = 0                # requests inside the ladder
        self._idle = asyncio.Event()   # set whenever _active == 0
        self._idle.set()

    # ------------------------------------------------- the admission ladder

    async def handle(self, payload: Any) -> tuple[int, dict]:
        """One request through the full ladder; returns (http_status,
        body).  The body always carries ``status`` and, when a check was
        solved, the verdict plus the same stats blocks ``--stats`` prints.
        """
        self.stats["requests"] += 1
        if self.closing.is_set():
            # Draining: in-flight checks finish, new work is turned away
            # (retryable — the client re-sends to the replacement server).
            self.stats["drain_rejected"] += 1
            return 503, {"status": "draining",
                         "error": "server is shutting down", "exit_code": 3}
        try:
            req = parse_request(payload)
        except ProtocolError as exc:
            self.stats["usage_errors"] += 1
            return HTTP_USAGE, {"status": "usage", "error": str(exc),
                                "exit_code": 2}
        self._active += 1
        self._idle.clear()
        try:
            return await self._admit_and_solve(req)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _admit_and_solve(self, req) -> tuple[int, dict]:
        try:
            charge = self.ledger.admit(req.tenant, req.timeout, None,
                                       self.policy)
        except QuotaExceeded as exc:
            # Overload is honest degradation: inconclusive, never wrong,
            # never cached — the client retries after the window turns.
            self.stats["rejected"] += 1
            return HTTP_OVERLOAD, {
                "status": "overload", "error": str(exc),
                "retry_after": round(exc.retry_after, 3), "exit_code": 3}
        try:
            key, names = canonical_request_key(req)
            leader = self._inflight.get(key)
            if leader is not None:
                future, leader_names = leader
                self.stats["deduped"] += 1
                body = dict(await asyncio.shield(future))
                body["deduped"] = True
                if body.get("counterexample"):
                    body["counterexample"] = translate_counterexample(
                        body["counterexample"], leader_names, names)
                return self._finish(key, body)
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = (future, names)
            try:
                body = await self.session.run(req)
            except asyncio.CancelledError:
                future.cancel()
                raise
            except Exception as exc:  # the server must answer
                body = {"status": "internal",
                        "error": f"{type(exc).__name__}: {exc}"}
            finally:
                self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_result(body)
            return self._finish(key, dict(body))
        finally:
            # Settle down to actual spend (followers spend nothing).
            self.ledger.settle(charge)

    def _finish(self, key: str, body: dict) -> tuple[int, dict]:
        status = _status_of(body)
        body.setdefault("status", "ok")
        body["key"] = key
        if body["status"] == "ok":
            body["exit_code"] = verdict_exit_code(body.get("verdict", ""))
            verdict = body.get("verdict", "?")
            counts = self.stats["verdicts"]
            counts[verdict] = counts.get(verdict, 0) + 1
            if body.get("certified"):
                self.stats["certified"] += 1
            self._note_encode(body)
        elif body["status"] == "usage":
            body["exit_code"] = 2
            self.stats["usage_errors"] += 1
        else:
            body["exit_code"] = 4
            self.stats["internal_errors"] += 1
        return status, body

    def _note_encode(self, body: dict) -> None:
        """Fold one response's ``stats.encode`` block into the server-wide
        ``/v1/stats`` counters (template hit rate, symexec spend) — the
        serving-level view of how much front-end work the shared VC
        template store is absorbing across tenants."""
        stats = body.get("stats")
        enc = stats.get("encode") if isinstance(stats, dict) else None
        if not isinstance(enc, dict):
            return
        agg = self.stats.setdefault(
            "encode", {"template_hits": 0, "template_misses": 0,
                       "symexec_time": 0.0})
        try:
            agg["template_hits"] += int(enc.get("template_hits", 0) or 0)
            agg["template_misses"] += int(enc.get("template_misses", 0)
                                          or 0)
            agg["symexec_time"] += float(enc.get("symexec_time", 0.0)
                                         or 0.0)
        except (TypeError, ValueError):
            pass

    @property
    def active(self) -> int:
        """Requests currently inside the admission ladder."""
        return self._active

    async def drained(self) -> None:
        """Resolves once no request is inside the ladder."""
        await self._idle.wait()

    def snapshot(self) -> dict:
        info = dict(self.stats)
        info["inflight"] = len(self._inflight)
        info["workers"] = self.session.workers
        info["draining"] = self.closing.is_set()
        if self.session.cache_dir:
            # ``corrupt`` counts quarantined (``.corrupt``) files found on
            # disk right now — damage set aside by any worker or server
            # sharing this directory, not just this process.
            info["cache"] = scan_shards(self.session.cache_dir)
            if self.cache_report:
                info["cache"]["migrated"] = self.cache_report["migrated"]
                info["cache"]["quarantined_at_startup"] = \
                    self.cache_report["quarantined"]
            from .session import template_dir_of
            info["templates"] = scan_shards(
                template_dir_of(self.session.cache_dir))
        return info

    # ------------------------------------------------------ HTTP transport

    async def serve_http(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._http_once(reader)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as exc:  # a broken parse must not kill the loop
            status, body = HTTP_INTERNAL, {
                "status": "internal",
                "error": f"{type(exc).__name__}: {exc}", "exit_code": 4}
        data = json.dumps(body).encode("utf-8")
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 408: "Request Timeout",
                   422: "Unprocessable Entity", 429: "Too Many Requests",
                   500: "Internal Server Error",
                   503: "Service Unavailable"}
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Status')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n")
        if status == HTTP_OVERLOAD and "retry_after" in body:
            head += f"Retry-After: {max(1, int(body['retry_after']))}\r\n"
        head += "Connection: close\r\n\r\n"
        try:
            writer.write(head.encode("ascii") + data)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _http_once(self, reader: asyncio.StreamReader
                         ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("ascii",
                                                        "replace").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"status": "usage", "error": "malformed request "
                         "line", "exit_code": 2}
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("ascii",
                                                    "replace").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if method == "GET" and path == "/v1/health":
            return 200, {"status": "ok", "workers": self.session.workers}
        if method == "GET" and path == "/v1/stats":
            return 200, self.snapshot()
        if path != "/v1/check":
            return 404, {"status": "usage", "error": f"no route {path!r}",
                         "exit_code": 2}
        if method != "POST":
            return 405, {"status": "usage",
                         "error": "use POST /v1/check", "exit_code": 2}
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if not (0 < length <= 16 * 1024 * 1024):
            return HTTP_USAGE, {"status": "usage", "error":
                                "a JSON body with Content-Length "
                                "(at most 16MiB) is required",
                                "exit_code": 2}
        raw = await reader.readexactly(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return HTTP_USAGE, {"status": "usage",
                                "error": "body is not valid JSON",
                                "exit_code": 2}
        return await self.handle(payload)

    # ----------------------------------------------------- JSONL transport

    async def serve_jsonl(self, reader: asyncio.StreamReader,
                          write_line) -> None:
        """One JSONL peer: a request object per line, a response per
        line.  ``id`` round-trips so a pipelining client can correlate."""
        while not self.closing.is_set():
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", "replace").strip()
            if not text:
                continue
            req_id = None
            try:
                payload = json.loads(text)
                if isinstance(payload, dict):
                    req_id = payload.pop("id", None)
                status, body = await self.handle(payload)
            except ValueError:
                status, body = HTTP_USAGE, {
                    "status": "usage", "error": "line is not valid JSON",
                    "exit_code": 2}
            except Exception as exc:  # pragma: no cover - belt and braces
                status, body = HTTP_INTERNAL, {
                    "status": "internal",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exit_code": 4}
            body["http_status"] = status
            if req_id is not None:
                body["id"] = req_id
            await write_line(json.dumps(body) + "\n")


async def _stdio_loop(server: Server) -> None:
    """JSONL over this process's stdin/stdout."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)

    async def write_line(text: str) -> None:
        sys.stdout.write(text)
        sys.stdout.flush()

    await server.serve_jsonl(reader, write_line)


def default_drain_seconds() -> float:
    """The drain deadline from ``PUGPARA_DRAIN_SECONDS`` (default 5s).

    A malformed or negative value degrades to the default — shutdown
    behavior must never crash on a bad environment variable.
    """
    raw = os.environ.get("PUGPARA_DRAIN_SECONDS")
    if raw is None or not raw.strip():
        return 5.0
    try:
        value = float(raw)
    except ValueError:
        return 5.0
    return value if value >= 0 else 5.0


async def _amain(args) -> int:
    cache_report = None
    if args.cache_dir:
        cache_report = ensure_layout(args.cache_dir)
        if cache_report["migrated"] or cache_report["quarantined"]:
            print(f"cache migrated: {cache_report['migrated']} entries, "
                  f"{cache_report['quarantined']} quarantined",
                  file=sys.stderr)
    session = Session(workers=args.workers, cache_dir=args.cache_dir,
                      rlimit_mb=args.rlimit_mb)
    ledger = QuotaLedger(seconds_per_window=args.quota_seconds,
                         conflicts_per_window=args.quota_conflicts,
                         window=args.quota_window,
                         max_inflight=args.max_inflight)
    policy = None
    if args.retries is not None or args.escalation is not None:
        policy = RetryPolicy(retries=args.retries or 0,
                             escalation=args.escalation or "geometric")
    server = Server(session, ledger, policy)
    server.cache_report = cache_report
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.closing.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    listeners = []
    endpoints = []
    if args.port is not None:
        http_srv = await asyncio.start_server(
            server.serve_http, host=args.host, port=args.port)
        listeners.append(http_srv)
        port = http_srv.sockets[0].getsockname()[1]
        endpoints.append(f"http={args.host}:{port}")
    if args.socket:
        async def jsonl_peer(reader, writer):
            async def write_line(text: str) -> None:
                writer.write(text.encode("utf-8"))
                await writer.drain()
            try:
                await server.serve_jsonl(reader, write_line)
            finally:
                writer.close()
        sock_srv = await asyncio.start_unix_server(jsonl_peer,
                                                   path=args.socket)
        listeners.append(sock_srv)
        endpoints.append(f"socket={args.socket}")
    if args.stdio:
        endpoints.append("stdio")

    print(f"{READY_PREFIX} {' '.join(endpoints)}", flush=True)
    try:
        if args.stdio:
            # Stdio is the lifetime: EOF on stdin is the shutdown signal.
            await _stdio_loop(server)
        else:
            await server.closing.wait()
    finally:
        server.closing.set()
        # Graceful drain: listeners stay open (late arrivals answer 503
        # with a ``draining`` body) while in-flight checks finish, up to
        # the deadline; then the hard teardown proceeds as before.
        drain = (args.drain_seconds if args.drain_seconds is not None
                 else default_drain_seconds())
        if drain > 0 and server.active:
            try:
                await asyncio.wait_for(server.drained(), timeout=drain)
            except asyncio.TimeoutError:
                print(f"drain deadline ({drain:g}s) expired with "
                      f"{server.active} check(s) still in flight",
                      file=sys.stderr)
        for listener in listeners:
            listener.close()
            await listener.wait_closed()
        session.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived verification server: warm workers, a "
                    "shared sharded query cache, in-flight dedup, and "
                    "per-tenant admission control.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help="serve HTTP on this port (0 = ephemeral; "
                             "the bound port is printed on the ready "
                             "line)")
    parser.add_argument("--stdio", action="store_true",
                        help="serve JSONL over stdin/stdout; EOF shuts "
                             "the server down")
    parser.add_argument("--socket", metavar="PATH",
                        help="serve JSONL over a unix socket at PATH")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="warm worker processes (0 = solve "
                             "in-process; default 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="sharded on-disk query cache shared by all "
                             "workers (and by other server processes "
                             "pointing at the same DIR)")
    parser.add_argument("--rlimit-mb", type=int, default=None,
                        metavar="MB",
                        help="per-worker address-space cap")
    parser.add_argument("--quota-seconds", type=float, default=None,
                        metavar="S", help="per-tenant wall-clock budget "
                        "per window (worst-case escalated charge)")
    parser.add_argument("--quota-conflicts", type=int, default=None,
                        metavar="N",
                        help="per-tenant conflict budget per window")
    parser.add_argument("--quota-window", type=float, default=60.0,
                        metavar="S", help="quota window length "
                        "(default 60)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        metavar="N",
                        help="per-tenant concurrent request cap")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry UNKNOWN verdicts up to N times under "
                             "escalated budgets")
    parser.add_argument("--escalation", choices=ESCALATIONS, default=None)
    parser.add_argument("--drain-seconds", type=float, default=None,
                        metavar="S",
                        help="on shutdown, let in-flight checks finish "
                             "for up to S seconds while new requests "
                             "answer 503 (default: "
                             "PUGPARA_DRAIN_SECONDS or 5; 0 drains "
                             "nothing)")
    args = parser.parse_args(argv)
    if args.port is None and not args.stdio and not args.socket:
        parser.error("pick at least one transport: --port, --stdio, "
                     "or --socket")
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
