"""The serving session: warm workers executing checks against one cache.

A session owns a long-lived :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers are warmed once at creation and reused for every request —
that reuse is the point of serving.  Three layers stay warm per worker:

* the **query cache** — the initializer installs a process-wide default
  :class:`~repro.smt.qcache.QueryCache` over the server's sharded disk
  directory (:func:`~repro.smt.dispatch.set_default_cache`), so every
  checker call reads and warms the same store, and N server processes on
  one cache directory share results through the shard locks;
* the **blast template cache** and **interned term tables** — module
  globals of the solver core, warm across requests automatically;
* the **parsed-module state** — imports, keywords, the works.

Workers inherit the dispatcher's hygiene (:func:`worker_init`: SIGINT
ignored, optional address-space rlimit) and die through its no-orphan
teardown funnel (:func:`teardown_pool`).  ``workers=0`` solves in-process
— the degraded mode, and the mode the in-process tests use.

A failed check never escapes as an exception: parse/type errors come back
as ``usage`` (the client's fault, HTTP 422), anything else as
``internal`` (HTTP 500), both shaped like a normal response body.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import asdict
from typing import Any

import os

from ..check import (
    check_equivalence, check_functional, check_races, suite_assumptions,
)
from ..check.result import outcome_to_json
from ..encode.templates import TemplateStore, set_default_template_store
from ..errors import ParseError, ReproError, SortError, TypeCheckError
from ..lang import LaunchConfig, check_kernel, parse_kernel
from ..param.equivalence import ParamOptions
from ..smt.dispatch import set_default_cache, teardown_pool, worker_init
from ..smt.qcache import QueryCache
from .protocol import CheckRequest

__all__ = ["Session", "execute_check", "serve_worker_init",
           "template_dir_of"]


def template_dir_of(cache_dir: str) -> str:
    """The VC-template shard tree nested inside the server's cache
    directory.  The name is not two hex characters, so the query-cache
    shard scanner and the flat-layout migrator never look inside it."""
    return os.path.join(cache_dir, "templates")


def serve_worker_init(rlimit_mb: int | None,
                      cache_dir: str | None) -> None:
    """Warm one worker: dispatcher hygiene plus the shared caches.

    Both long-lived stores point at the server's sharded directory — the
    canonical query cache at its root, the VC template store at its
    ``templates/`` subtree — so every worker of every server process on
    one directory shares solved queries *and* front-end encodings."""
    worker_init(rlimit_mb)
    if cache_dir:
        set_default_cache(QueryCache(disk_dir=cache_dir))
        set_default_template_store(
            TemplateStore(disk_dir=template_dir_of(cache_dir)))


def _concretize(req: CheckRequest) -> dict | None:
    out: dict = {}
    if req.cbdim:
        out["bdim"] = req.cbdim
    if req.cgdim:
        out["gdim"] = req.cgdim
    if req.scalars:
        out["scalars"] = dict(req.scalars)
    return out or None


def _run_check(req: CheckRequest):
    builder = suite_assumptions(req.pair) if req.pair else None
    common: dict[str, Any] = dict(
        timeout=req.timeout, validate=req.validate, cache=None,
        certify=req.certify)
    if req.command == "races":
        info = check_kernel(parse_kernel(req.source))
        return check_races(info, req.width, assumption_builder=builder,
                           concretize=_concretize(req), **common)
    if req.command == "func":
        info = check_kernel(parse_kernel(req.source))
        if req.method == "param":
            return check_functional(
                info, method="param", width=req.width,
                assumption_builder=builder,
                concretize=_concretize(req), **common)
        config = LaunchConfig(bdim=req.bdim, gdim=req.gdim or (1, 1),
                              width=req.width)
        return check_functional(
            info, method="nonparam", config=config,
            scalar_values=dict(req.scalars) or None, **common)
    # equiv
    src = check_kernel(parse_kernel(req.source))
    tgt = check_kernel(parse_kernel(req.target))
    if req.method == "param":
        return check_equivalence(
            src, tgt, method="param", width=req.width,
            assumption_builder=builder, concretize=_concretize(req),
            options=ParamOptions(timeout=req.timeout,
                                 bughunt=req.bughunt,
                                 validate=req.validate, cache=None,
                                 certify=req.certify))
    config = LaunchConfig(bdim=req.bdim, gdim=req.gdim or (1, 1),
                          width=req.width)
    return check_equivalence(
        src, tgt, method="nonparam", config=config,
        scalar_values=dict(req.scalars) or None, **common)


def execute_check(fields: dict) -> dict:
    """Run one request to a response body.  Executes inside a worker
    process (or in-process at ``workers=0``); must stay picklable
    end-to-end, hence the plain-dict request and response."""
    req = CheckRequest(**fields)
    start = time.monotonic()
    try:
        outcome = _run_check(req)
    except (ParseError, SortError, TypeCheckError) as exc:
        return {"status": "usage",
                "error": f"{type(exc).__name__}: {exc}"}
    except ReproError as exc:
        return {"status": "internal",
                "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:  # contained: the server must answer
        return {"status": "internal",
                "error": f"{type(exc).__name__}: {exc}"}
    body = outcome_to_json(outcome)
    body["status"] = "ok"
    if req.certify and body.get("verdict") == "verified":
        # Under certify a rejected proof degrades the query to UNKNOWN,
        # so a surviving VERIFIED is proof-checked by construction.
        body["certified"] = True
    body.setdefault("elapsed", time.monotonic() - start)
    return body


class Session:
    """The warm execution backend behind both transports.

    ``workers >= 1`` keeps that many warmed processes alive for the
    server's lifetime; ``workers=0`` runs checks on the event loop's
    default thread executor (in-process — the solver releases no GIL, so
    this mode is for tests and tiny deployments).
    """

    def __init__(self, workers: int = 1, cache_dir: str | None = None,
                 rlimit_mb: int | None = None) -> None:
        self.workers = max(0, int(workers))
        self.cache_dir = cache_dir
        self._pool: ProcessPoolExecutor | None = None
        self._rlimit = rlimit_mb
        if self.workers:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=serve_worker_init,
                initargs=(rlimit_mb, cache_dir))
        elif cache_dir:
            set_default_cache(QueryCache(disk_dir=cache_dir))
            set_default_template_store(
                TemplateStore(disk_dir=template_dir_of(cache_dir)))

    async def run(self, req: CheckRequest) -> dict:
        """Solve one request on a warm worker; a dead pool is rebuilt
        once, then the request degrades to an in-process solve."""
        fields = asdict(req)
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            try:
                return await loop.run_in_executor(
                    self._pool, execute_check, fields)
            except BrokenExecutor:
                teardown_pool(self._pool)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=serve_worker_init,
                    initargs=(self._rlimit, self.cache_dir))
        return await loop.run_in_executor(None, execute_check, fields)

    def close(self) -> None:
        """Tear the pool down through the no-orphan funnel."""
        if self._pool is not None:
            teardown_pool(self._pool)
            self._pool = None
        set_default_cache(None)
        set_default_template_store(None)
