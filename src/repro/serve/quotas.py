"""Admission control: per-tenant budget quotas over a sliding window.

A tenant's requests are admitted against two axes — wall-clock seconds
and CDCL conflicts — the same two budget axes the retry policy escalates
(:meth:`repro.smt.resilience.RetryPolicy.budgets`).  A request is charged
its *worst case up front*: the sum of every escalated attempt the policy
could spend if the solver answered UNKNOWN all the way down the retry
ladder.  When the check settles, the unused remainder is refunded, so a
fast verified answer costs what it used, not what it could have used.

Rejection is honest degradation: an over-quota request surfaces as HTTP
429 (a JSONL ``error``), is never solved, never cached, and never turned
into a verdict — the contract that the server may refuse work but must
not answer wrongly.

The ledger is a plain in-process object guarded by one lock; the clock is
injectable so tests replay window expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..smt.resilience import RetryPolicy

__all__ = ["QuotaExceeded", "Charge", "QuotaLedger", "worst_case_charge"]


class QuotaExceeded(Exception):
    """The tenant's window allowance cannot cover this request."""

    def __init__(self, tenant: str, axis: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} exhausted its {axis} quota; "
            f"retry after {retry_after:.1f}s")
        self.tenant = tenant
        self.axis = axis
        self.retry_after = retry_after


@dataclass
class Charge:
    """One admitted request's reserved budget (a ticket for settlement)."""
    tenant: str
    seconds: float
    conflicts: int
    window_start: float = 0.0
    settled: bool = False


def worst_case_charge(timeout: float, conflict_budget: int | None,
                      policy: RetryPolicy) -> tuple[float, int]:
    """The (seconds, conflicts) a request could spend across every
    escalated retry attempt — the amount reserved at admission."""
    seconds = 0.0
    conflicts = 0
    for attempt in range(policy.retries + 1):
        t, c = policy.budgets(timeout, conflict_budget, attempt)
        seconds += t if t is not None else timeout
        if c is not None:
            conflicts += c
    return seconds, conflicts


@dataclass
class _Bucket:
    window_start: float
    seconds_used: float = 0.0
    conflicts_used: int = 0
    inflight: int = 0


@dataclass
class QuotaLedger:
    """Per-tenant sliding-window budget accounting.

    ``seconds_per_window`` / ``conflicts_per_window`` cap what one tenant
    may reserve inside any ``window``-second span; ``max_inflight`` caps
    concurrency regardless of budget.  ``None`` on an axis disables it.
    """
    seconds_per_window: float | None = None
    conflicts_per_window: int | None = None
    window: float = 60.0
    max_inflight: int | None = None
    clock: object = time.monotonic
    _mu: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _buckets: dict = field(default_factory=dict, repr=False)

    def _bucket(self, tenant: str, now: float) -> _Bucket:
        bucket = self._buckets.get(tenant)
        if bucket is None or now - bucket.window_start >= self.window:
            inflight = bucket.inflight if bucket is not None else 0
            bucket = _Bucket(window_start=now, inflight=inflight)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, timeout: float,
              conflict_budget: int | None,
              policy: RetryPolicy) -> Charge:
        """Reserve the request's worst-case budget or raise
        :class:`QuotaExceeded` — nothing is ever partially admitted."""
        seconds, conflicts = worst_case_charge(timeout, conflict_budget,
                                               policy)
        now = float(self.clock())
        with self._mu:
            bucket = self._bucket(tenant, now)
            retry_after = self.window - (now - bucket.window_start)
            if self.max_inflight is not None and \
                    bucket.inflight >= self.max_inflight:
                raise QuotaExceeded(tenant, "concurrency", retry_after)
            if self.seconds_per_window is not None and \
                    bucket.seconds_used + seconds > self.seconds_per_window:
                raise QuotaExceeded(tenant, "wall-clock", retry_after)
            if self.conflicts_per_window is not None and conflicts and \
                    bucket.conflicts_used + conflicts > \
                    self.conflicts_per_window:
                raise QuotaExceeded(tenant, "conflict", retry_after)
            bucket.seconds_used += seconds
            bucket.conflicts_used += conflicts
            bucket.inflight += 1
            return Charge(tenant=tenant, seconds=seconds,
                          conflicts=conflicts,
                          window_start=bucket.window_start)

    def settle(self, charge: Charge, seconds_spent: float = 0.0,
               conflicts_spent: int = 0) -> None:
        """Release the reservation, keeping only what was actually spent.

        Settling is idempotent; the refund never exceeds the reservation
        (an over-budget solve still only costs its charge) and applies
        only while the charge's own admission window is still current — a
        refund into a fresh window would mint negative usage.
        """
        if charge.settled:
            return
        charge.settled = True
        with self._mu:
            bucket = self._buckets.get(charge.tenant)
            if bucket is None:
                return
            bucket.inflight = max(0, bucket.inflight - 1)
            if bucket.window_start != charge.window_start:
                return  # the reservation's window already turned over
            refund_s = max(0.0, charge.seconds - max(0.0, seconds_spent))
            refund_c = max(0, charge.conflicts - max(0, conflicts_spent))
            bucket.seconds_used = max(0.0, bucket.seconds_used - refund_s)
            bucket.conflicts_used = max(0, bucket.conflicts_used - refund_c)

    def usage(self, tenant: str) -> dict:
        """The tenant's current-window accounting (for ``/v1/stats``)."""
        now = float(self.clock())
        with self._mu:
            bucket = self._bucket(tenant, now)
            return {
                "seconds_used": bucket.seconds_used,
                "conflicts_used": bucket.conflicts_used,
                "inflight": bucket.inflight,
                "window_remaining": self.window - (now -
                                                   bucket.window_start),
            }
