"""Server-side administration of the shared sharded cache directory.

The cache's correctness machinery lives in :mod:`repro.smt.qcache` (shard
layout, advisory locks, checksums, quarantine, flat-layout migration).
This module is the *operator's* view of one cache directory: make sure it
is in the sharded layout before workers start hammering it, and summarize
/ audit its contents for ``/v1/stats`` and the bench harness.
"""

from __future__ import annotations

import json
import os

from ..smt.qcache import FORMAT_TAG, migrate_layout
from ..smt.qcache import _verify_payload  # the one shared verifier

__all__ = ["ensure_layout", "scan_shards", "verify_shards"]


def ensure_layout(disk_dir: str | os.PathLike) -> dict:
    """Create ``disk_dir`` if needed and migrate any legacy flat layout.

    Called once at server startup, before the worker pool exists, so the
    per-worker lazy migration never races a hot request path.
    """
    root = os.fspath(disk_dir)
    os.makedirs(root, exist_ok=True)
    moved, quarantined = migrate_layout(root)
    return {"dir": root, "migrated": moved, "quarantined": quarantined}


def _shard_dirs(root: str) -> list[str]:
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return sorted(
        os.path.join(root, n) for n in names
        if len(n) == 2 and os.path.isdir(os.path.join(root, n)))


def scan_shards(disk_dir: str | os.PathLike) -> dict:
    """Cheap inventory of a cache directory: entry/corrupt counts and
    total bytes, per the whole store (no payloads are read)."""
    root = os.fspath(disk_dir)
    entries = corrupt = size = 0
    shards = _shard_dirs(root)
    for shard in shards:
        try:
            names = os.listdir(shard)
        except OSError:  # pragma: no cover - shard vanished mid-scan
            continue
        for name in names:
            if name.endswith(".json"):
                entries += 1
            elif name.endswith(".corrupt"):
                corrupt += 1
            else:
                continue
            try:
                size += os.path.getsize(os.path.join(shard, name))
            except OSError:  # pragma: no cover
                pass
    return {"dir": root, "shards": len(shards), "entries": entries,
            "corrupt": corrupt, "bytes": size}


def verify_shards(disk_dir: str | os.PathLike,
                  format_tag: str = FORMAT_TAG) -> dict:
    """Audit every entry's checksum — the deep integrity pass.

    Reads and re-verifies each sharded entry exactly as a lookup would,
    without quarantining anything (the audit observes, the hot path
    acts).  Used by the concurrency tests and the bench harness to prove
    that N writers left zero damaged entries behind.
    """
    root = os.fspath(disk_dir)
    ok = stale = bad = 0
    for shard in _shard_dirs(root):
        try:
            names = os.listdir(shard)
        except OSError:  # pragma: no cover
            continue
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(shard, name),
                          encoding="utf-8") as fh:
                    state = _verify_payload(json.load(fh), format_tag)
            except (OSError, ValueError):
                state = "bad"
            if state == "ok":
                ok += 1
            elif state == "stale":
                stale += 1
            else:
                bad += 1
    return {"dir": root, "ok": ok, "stale": stale, "bad": bad}
