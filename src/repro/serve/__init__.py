"""Long-lived verification serving: warm workers, one shared sharded
query cache, alpha-invariant in-flight dedup, per-tenant admission
control.  Entry point: ``python -m repro.serve`` (see :mod:`.app`)."""

from .protocol import (
    CheckRequest, ProtocolError, canonical_request_key, parse_request,
    translate_counterexample, verdict_exit_code, verdict_http_status,
)
from .quotas import Charge, QuotaExceeded, QuotaLedger, worst_case_charge
from .session import Session, execute_check
from .shards import ensure_layout, scan_shards, verify_shards
from .app import Server, main

__all__ = [
    "CheckRequest", "ProtocolError", "canonical_request_key",
    "parse_request", "translate_counterexample", "verdict_exit_code",
    "verdict_http_status",
    "Charge", "QuotaExceeded", "QuotaLedger", "worst_case_charge",
    "Session", "execute_check",
    "ensure_layout", "scan_shards", "verify_shards",
    "Server", "main",
]
