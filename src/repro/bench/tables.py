"""Generators for the paper's tables.

* :func:`table1` — the qualitative tool-comparison matrix (Section II-A);
* :func:`table2` — equivalence checking of the *bug-free* SDK kernel pairs:
  non-parameterized at n = 4/8/16/32 (with +C. concretization at the larger
  n, as the paper's parenthesized entries) versus parameterized with and
  without concretization, across bit widths;
* :func:`table3` — the same comparison on *buggy versions* (injected
  address/guard mutations, the paper's described bug classes).

Every cell calls the real checkers; the cell budget defaults to 20 s
(``PUGPARA_BENCH_TIMEOUT=300`` reproduces the paper's 5-minute limit).
Rows are configurable so the quick benchmark profile and the full
reproduction share one code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial

from ..check.configs import reduction_assumptions, transpose_assumptions
from ..check.equivalence import check_equivalence_nonparam
from ..kernels import address_mutants, load_pair
from ..lang import LaunchConfig, check_kernel
from ..param.equivalence import ParamOptions, check_equivalence_param
from .harness import Cell, TableAccumulator, bench_timeout, run_cell

__all__ = ["table1", "table2_cell", "table2", "table3_cell", "table3",
           "TRANSPOSE_WIDTHS", "REDUCTION_WIDTHS", "NONPARAM_NS"]

TRANSPOSE_WIDTHS = (8, 16, 32)
REDUCTION_WIDTHS = (8, 12)
NONPARAM_NS = (4, 8, 16, 32)


# ---------------------------------------------------------------- Table I


def table1() -> str:
    """The qualitative comparison matrix (verbatim content of Table I)."""
    headers = ["Comparison", "PUGpara (this repo)", "GKLEE", "GRace"]
    rows = [
        ["Methodology", "Symbolic Analysis",
         "Concolic Exec. in virtual machine", "Dyn. Check (+ Static)"],
        ["Level of Analysis", "Source Code", "LLVM Bytecode",
         "Source Instrument."],
        ["Bugs Targeted", "Race, Func. Corrct., Equiv. Check",
         "Corrct. & Perf. Bugs", "Race, Bank Conflict"],
        ["Program Inputs", "Fully Symbolic", "Symbolic + Concrete",
         "No Symbolic"],
        ["Parameterized?", "Yes (Race and Equiv. Check)", "No", "No"],
    ]
    from .harness import format_table
    return format_table("Table I — comparison of GPU program verifiers",
                        headers, rows)


# ---------------------------------------------------------------- Table II


def _transpose_geometry(n: int) -> tuple[tuple[int, int, int],
                                         tuple[int, int], int, int]:
    """The paper's n-thread transpose configuration: a sqrt(n) x sqrt(n)
    block when n is a perfect square, else the closest non-square block
    (those are the '*' rows — the pair is then NOT equivalent)."""
    root = int(math.isqrt(n))
    if root * root == n:
        bdim = (root, root, 1)
    else:
        # e.g. n=8 -> 4x2, n=32 -> 8x4
        a = 1 << ((n.bit_length() // 2))
        bdim = (a, n // a, 1)
    gdim = (2, 2)
    width_elems = bdim[0] * gdim[0]
    height_elems = bdim[1] * gdim[1]
    return bdim, gdim, width_elems, height_elems


def table2_cell(pair: str, width: int, mode: str,
                n: int | None = None,
                timeout: float | None = None) -> Cell:
    """One Table II cell.

    ``mode``: ``"nonparam"`` / ``"nonparam+C"`` (pin input array cells) /
    ``"param"`` / ``"param+C"`` (pin the geometry and scalars).
    """
    budget = timeout if timeout is not None else bench_timeout()
    (_, src), (_, tgt) = load_pair(pair)

    if pair == "Transpose":
        builder = transpose_assumptions
        if n is not None:
            bdim, gdim, w_elems, h_elems = _transpose_geometry(n)
            scalars = {"width": w_elems, "height": h_elems}
        conc_geometry = {"bdim": (2, 2, 1), "gdim": (2, 2),
                         "scalars": {"width": 4, "height": 4}}
    else:
        builder = reduction_assumptions
        if n is not None:
            bdim, gdim, scalars = (n, 1, 1), (1, 1), {}
        conc_geometry = {"bdim": (8, 1, 1), "gdim": (1, 1)}

    if mode.startswith("nonparam"):
        assert n is not None
        extent = None
        if mode.endswith("+C"):
            extent = bdim[0] * bdim[1] * gdim[0] * gdim[1]
        return run_cell(lambda: check_equivalence_nonparam(
            src, tgt, LaunchConfig(bdim=bdim, gdim=gdim, width=width),
            scalar_values=scalars or None,
            concretize_extent=extent, timeout=budget))

    concretize = conc_geometry if mode.endswith("+C") else None
    return run_cell(lambda: check_equivalence_param(
        src, tgt, width, assumption_builder=builder, concretize=concretize,
        options=ParamOptions(timeout=budget)))


def table2(widths_transpose=TRANSPOSE_WIDTHS, widths_reduction=REDUCTION_WIDTHS,
           ns=NONPARAM_NS, timeout: float | None = None) -> str:
    """Regenerate Table II (bug-free equivalence checking)."""
    headers = ["Kernel", *(f"np n={n}" for n in ns),
               *(f"np n={n} +C" for n in ns if n >= 16),
               "param -C", "param +C"]
    acc = TableAccumulator(
        title="Table II — equivalence checking, bug-free kernels "
              "(times in s; * = not equivalent; T.O = budget exhausted)",
        headers=headers)
    jobs = [("Transpose", w) for w in widths_transpose]
    jobs += [("Reduction", w) for w in widths_reduction]
    for pair, width in jobs:
        row = f"{pair} ({width}b)"
        for n in ns:
            acc.put(row, f"np n={n}",
                    table2_cell(pair, width, "nonparam", n, timeout))
        for n in ns:
            if n >= 16:
                acc.put(row, f"np n={n} +C",
                        table2_cell(pair, width, "nonparam+C", n, timeout))
        acc.put(row, "param -C", table2_cell(pair, width, "param",
                                             timeout=timeout))
        acc.put(row, "param +C", table2_cell(pair, width, "param+C",
                                             timeout=timeout))
    return acc.render()


# --------------------------------------------------------------- Table III


@dataclass(frozen=True)
class BuggyPair:
    """A source kernel against a mutated target (an injected bug)."""
    pair: str
    mutant_label: str


def _buggy_target(pair: str, index: int = 0):
    (_, src), (tgt_kernel, _) = load_pair(pair)
    mutants = list(address_mutants(tgt_kernel))
    mutant = mutants[index % len(mutants)]
    return src, check_kernel(mutant.kernel), mutant


def table3_cell(pair: str, width: int, mode: str, n: int | None = None,
                mutant_index: int = 0,
                timeout: float | None = None) -> Cell:
    """One Table III cell: equivalence checking against a buggy version."""
    budget = timeout if timeout is not None else bench_timeout()
    src, buggy, _ = _buggy_target(pair, mutant_index)
    if pair == "Transpose":
        builder = transpose_assumptions
        if n is not None:
            bdim, gdim, w_elems, h_elems = _transpose_geometry(n)
            scalars = {"width": w_elems, "height": h_elems}
    else:
        builder = reduction_assumptions
        if n is not None:
            bdim, gdim, scalars = (n, 1, 1), (1, 1), {}

    if mode == "nonparam":
        assert n is not None
        return run_cell(lambda: check_equivalence_nonparam(
            src, buggy, LaunchConfig(bdim=bdim, gdim=gdim, width=width),
            scalar_values=scalars or None, timeout=budget))
    # parameterized fast bug hunting (Section IV-D)
    return run_cell(lambda: check_equivalence_param(
        src, buggy, width, assumption_builder=builder,
        options=ParamOptions(timeout=budget, bughunt=True)))


def table3(widths_transpose=(16, 32), widths_reduction=(8, 16, 32),
           ns=(4, 8, 16), timeout: float | None = None) -> str:
    """Regenerate Table III (buggy versions)."""
    headers = ["Kernel", *(f"np n={n}" for n in ns), "param"]
    acc = TableAccumulator(
        title="Table III — equivalence checking, buggy versions "
              "(* = bug found; T.O = budget exhausted)",
        headers=headers)
    jobs = [("Transpose", w) for w in widths_transpose]
    jobs += [("Reduction", w) for w in widths_reduction]
    for pair, width in jobs:
        row = f"{pair} ({width}b)"
        for n in ns:
            acc.put(row, f"np n={n}",
                    table3_cell(pair, width, "nonparam", n, timeout=timeout))
        acc.put(row, "param",
                table3_cell(pair, width, "param", timeout=timeout))
    return acc.render()
