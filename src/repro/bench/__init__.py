"""Benchmark harness: regenerates every table and figure of the paper's
evaluation (see benchmarks/ for the pytest-benchmark entry points and
EXPERIMENTS.md for paper-vs-measured results)."""

from .harness import (
    Cell, TableAccumulator, bench_timeout, format_cell, format_table,
    run_cell,
)
from .tables import table1, table2, table2_cell, table3, table3_cell

__all__ = [
    "Cell", "TableAccumulator", "bench_timeout", "format_cell",
    "format_table", "run_cell",
    "table1", "table2", "table2_cell", "table3", "table3_cell",
]
