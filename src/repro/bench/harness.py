"""Benchmark harness utilities: timing cells, the paper's table notation,
and ASCII table rendering.

Notation follows the paper's Tables II/III exactly:

* ``T.O``   — the budget was exhausted (our budget is configurable via the
  ``PUGPARA_BENCH_TIMEOUT`` environment variable; the paper used 5 minutes);
* ``*``     — the check found the kernels *not* equivalent (the paper's
  "Transpose kernels are not equivalent when n is not a perfect square");
* ``<0.1``  — sub-100ms solving;
* ``(x)``   — the paper puts the +C. time in parentheses next to the -C.
  entry for the 16/32-thread columns; we render +C. columns separately.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from ..check.result import CheckOutcome, Verdict

__all__ = ["bench_timeout", "Cell", "run_cell", "run_cells", "format_cell",
           "format_table", "TableAccumulator"]


def bench_timeout(default: float = 20.0) -> float:
    """The per-cell budget. ``PUGPARA_BENCH_TIMEOUT=300`` reproduces the
    paper's five-minute limit; the default keeps a full table run quick."""
    return float(os.environ.get("PUGPARA_BENCH_TIMEOUT", default))


@dataclass
class Cell:
    """One table cell: the checker outcome plus wall time."""
    outcome: CheckOutcome
    elapsed: float

    @property
    def verdict(self) -> Verdict:
        return self.outcome.verdict


def run_cell(fn: Callable[[], CheckOutcome]) -> Cell:
    start = time.monotonic()
    outcome = fn()
    return Cell(outcome=outcome, elapsed=time.monotonic() - start)


def _run_spec(spec: tuple) -> Cell:
    fn, fn_args, fn_kwargs = spec
    start = time.monotonic()
    try:
        outcome = fn(*fn_args, **fn_kwargs)
    except Exception as exc:
        # One broken cell must not sink the whole table: record it as an
        # inconclusive entry and keep benching.
        outcome = CheckOutcome(verdict=Verdict.UNKNOWN,
                               reason=f"cell failed: "
                                      f"{type(exc).__name__}: {exc}")
    return Cell(outcome=outcome, elapsed=time.monotonic() - start)


def run_cells(specs: list[tuple], jobs: int = 1) -> list[Cell]:
    """Run whole table cells, optionally on worker processes.

    Each spec is ``(fn, args, kwargs)`` and must be picklable (module-level
    checker function plus plain-data arguments).  A cell is itself one
    checker invocation, so this parallelizes *across* cells while the SMT
    dispatcher parallelizes *within* one; per-cell wall time is measured in
    the worker, so table entries stay comparable to serial runs.

    A cell that raises becomes an UNKNOWN entry; a broken worker pool
    degrades to a serial re-run — a bench table finishes or explains
    itself, it does not crash.
    """
    if jobs <= 1 or len(specs) <= 1:
        return [_run_spec(s) for s in specs]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            return list(pool.map(_run_spec, specs))
    except BrokenExecutor:
        return [_run_spec(s) for s in specs]


def format_cell(cell: Cell | None) -> str:
    """Render a cell in the paper's notation."""
    if cell is None:
        return "-"
    v = cell.verdict
    if v is Verdict.TIMEOUT:
        return "T.O"
    if v is Verdict.UNSUPPORTED:
        return "n/s"
    suffix = ""
    if v is Verdict.BUG:
        suffix = "*"          # the paper's 'not equivalent' marker
    elif v is Verdict.UNKNOWN:
        suffix = "?"
    t = cell.elapsed
    if t < 0.1:
        return "<0.1" + suffix
    if t < 10:
        return f"{t:.2f}{suffix}"
    return f"{t:.0f}{suffix}"


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """Plain ASCII table in the style of the paper's tables."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title), render(headers), sep]
    lines += [render(r) for r in rows]
    return "\n".join(lines)


@dataclass
class TableAccumulator:
    """Collects cells across pytest-benchmark items and prints the final
    table once at the end of the module."""
    title: str
    headers: list[str]
    rows: dict[str, dict[str, str]] = field(default_factory=dict)
    row_order: list[str] = field(default_factory=list)

    def put(self, row: str, column: str, cell: Cell | str) -> None:
        if row not in self.rows:
            self.rows[row] = {}
            self.row_order.append(row)
        self.rows[row][column] = (cell if isinstance(cell, str)
                                  else format_cell(cell))

    def render(self) -> str:
        body = []
        for name in self.row_order:
            row = [name]
            for col in self.headers[1:]:
                row.append(self.rows[name].get(col, "-"))
            body.append(row)
        return format_table(self.title, self.headers, body)

    def dump(self) -> None:
        print()
        print(self.render())
