"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one cell of a paper table through the real
checkers.  ``benchmark.pedantic(rounds=1)`` is used throughout: a
verification query is a long-running deterministic computation, not a
microbenchmark, and the paper's tables are single measurements too.

Set ``PUGPARA_BENCH_TIMEOUT=300`` for the paper's five-minute budget (the
default of 20 s keeps a full run quick; T.O cells simply time out sooner —
the table *shape* is unaffected).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import TableAccumulator


@pytest.fixture(scope="module")
def table_acc(request):
    """A per-module table accumulator that prints itself when the module's
    benchmarks are done."""
    acc_holder: dict[str, TableAccumulator] = {}

    def get(title: str, headers: list[str]) -> TableAccumulator:
        if "acc" not in acc_holder:
            acc_holder["acc"] = TableAccumulator(title=title, headers=headers)
        return acc_holder["acc"]

    yield get
    if "acc" in acc_holder:
        acc_holder["acc"].dump()
