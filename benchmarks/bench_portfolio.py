#!/usr/bin/env python
"""Benchmark portfolio racing against every fixed solving strategy.

Runs a suite of race and equivalence checks under each fixed strategy the
dispatcher offers —

* ``oneshot``      — the non-incremental facade (``incremental=False``);
* ``incremental``  — shared-prefix assumption solving, no preprocessing;
* ``incremental_preprocess`` — incremental plus the SatELite-style pass;

and then under portfolio racing —

* ``portfolio_serial`` — ``jobs=1``: the arms tried sequentially with
  early exit (the serial-degradation path);
* ``portfolio_race``   — ``jobs=2``: arms raced on the worker pool,
  first conclusive verdict wins (skipped on single-CPU machines, where
  a race cannot beat sequential execution).

Each cell is run ``--repeats`` times and the minimum wall time is kept.
Verdicts must be identical across every column; any mismatch fails the
run — racing may only change *which* equally-correct answer arrives
first, never the answer.

Writes ``BENCH_portfolio.json`` with per-cell times, verdicts, and the
portfolio-vs-best-fixed ratio.  ``--check-regression`` fails if the
``portfolio_race`` column is more than 1.1x slower than the *best* fixed
strategy on any cell (plus a small absolute slack for sub-second cells).
The gate needs at least two CPUs to be meaningful and is skipped (with a
note in the report) otherwise.

Usage::

    PYTHONPATH=src python benchmarks/bench_portfolio.py [--smoke]
        [--repeats N] [--check-regression] [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.configs import reduction_assumptions, transpose_assumptions
from repro.check.equivalence import check_equivalence
from repro.check.races import check_races
from repro.kernels import load

TRANSPOSE_CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
                  "scalars": {"width": 4, "height": 4}}
REDUCE_CONC = {"bdim": (8, 1, 1), "gdim": (1, 1)}
TIMEOUT = 300.0
PORTFOLIO_WIDTH = 3

#: The fixed single-strategy columns the portfolio is raced against.
FIXED_MODES = (
    ("oneshot", {"jobs": 1, "incremental": False, "portfolio": 0}),
    ("incremental", {"jobs": 1, "incremental": True, "preprocess": False,
                     "portfolio": 0}),
    ("incremental_preprocess", {"jobs": 1, "incremental": True,
                                "preprocess": True, "portfolio": 0}),
)

#: Regression gate: the pooled race must not exceed
#: ``RATIO * best_fixed + SLACK`` seconds on any cell.
REGRESSION_RATIO = 1.1
REGRESSION_SLACK = 0.2


def _portfolio_modes(cpus: int):
    modes = [("portfolio_serial", {"jobs": 1,
                                   "portfolio": PORTFOLIO_WIDTH})]
    if cpus >= 2:
        modes.append(("portfolio_race", {"jobs": 2,
                                         "portfolio": PORTFOLIO_WIDTH}))
    return modes


def _suite(smoke: bool):
    """(name, callable(**mode_kwargs)) pairs — the benchmark workload."""
    _, naive_t = load("naiveTranspose")
    _, opt_t = load("optimizedTranspose")
    _, naive_r = load("naiveReduce")
    _, opt_r = load("optimizedReduce")

    def races(info, width, builder, conc):
        return lambda **kw: check_races(
            info, width, assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, cache=False, **kw)

    def equiv_param(src, tgt, width, builder, conc):
        return lambda **kw: check_equivalence(
            src, tgt, method="param", width=width,
            assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, cache=False, **kw)

    cells = [
        ("races/naiveTranspose/w8",
         races(naive_t, 8, transpose_assumptions, TRANSPOSE_CONC)),
        ("races/optimizedReduce/w16",
         races(opt_r, 16, reduction_assumptions, REDUCE_CONC)),
        ("equiv-param/Reduce/w8",
         equiv_param(naive_r, opt_r, 8, reduction_assumptions,
                     REDUCE_CONC)),
    ]
    if not smoke:
        cells += [
            ("races/optimizedTranspose/w16",
             races(opt_t, 16, transpose_assumptions, TRANSPOSE_CONC)),
            ("races/naiveReduce/w32",
             races(naive_r, 32, reduction_assumptions, REDUCE_CONC)),
            ("equiv-param/Transpose/w8",
             equiv_param(naive_t, opt_t, 8, transpose_assumptions,
                         TRANSPOSE_CONC)),
        ]
    return cells


def _run_cell(fn, kwargs, repeats: int):
    best = None
    outcome = None
    for _ in range(repeats):
        start = time.monotonic()
        outcome = fn(**kwargs)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    cell = {"verdict": outcome.verdict.name, "elapsed": round(best, 4),
            "queries": outcome.stats.get("solver", {}).get("queries", 0)}
    port = outcome.stats.get("portfolio")
    if port:
        cell["races"] = port.get("races", 0)
        cell["wins"] = port.get("wins", {})
        cell["wasted_time"] = round(port.get("wasted_time", 0.0), 4)
    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "BENCH_portfolio.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="small cell set for CI")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per cell; minimum wall time is kept")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the pooled race is >1.1x slower "
                             "than the best fixed strategy on any cell")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    modes = list(FIXED_MODES) + _portfolio_modes(cpus)
    fixed_names = [m for m, _ in FIXED_MODES]
    suite = _suite(args.smoke)
    report = {"smoke": args.smoke, "repeats": args.repeats, "cpus": cpus,
              "portfolio_width": PORTFOLIO_WIDTH,
              "suite_size": len(suite), "cells": {}}
    totals = {mode: 0.0 for mode, _ in modes}

    for name, fn in suite:
        cell = {}
        for mode, kwargs in modes:
            print(f"{name} [{mode}] ...", flush=True)
            cell[mode] = _run_cell(fn, kwargs, args.repeats)
            totals[mode] += cell[mode]["elapsed"]
        verdicts = {cell[mode]["verdict"] for mode, _ in modes}
        if len(verdicts) != 1:
            print(f"VERDICT MISMATCH at {name}: "
                  + ", ".join(f"{m}={cell[m]['verdict']}"
                              for m, _ in modes), file=sys.stderr)
            return 1
        cell["best_fixed"] = round(
            min(cell[m]["elapsed"] for m in fixed_names), 4)
        report["cells"][name] = cell

    report["totals"] = {m: round(t, 4) for m, t in totals.items()}
    best_fixed_total = sum(c["best_fixed"]
                           for c in report["cells"].values())
    report["best_fixed_total"] = round(best_fixed_total, 4)
    race_total = totals.get("portfolio_race")
    report["race_vs_best_fixed"] = (
        round(race_total / best_fixed_total, 3)
        if race_total and best_fixed_total else None)
    report["regression_gate"] = ("skipped: fewer than 2 CPUs"
                                 if cpus < 2 else "eligible")

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for mode, _ in modes:
        print(f"{mode:24s} {totals[mode]:8.2f}s")
    print(f"{'best fixed':24s} {best_fixed_total:8.2f}s")
    print(f"wrote {os.path.abspath(args.output)}")

    if args.check_regression:
        if cpus < 2:
            print("regression gate skipped: racing needs >= 2 CPUs")
            return 0
        failed = False
        for name, cell in report["cells"].items():
            limit = (REGRESSION_RATIO * cell["best_fixed"]
                     + REGRESSION_SLACK)
            got = cell["portfolio_race"]["elapsed"]
            if got > limit:
                print(f"REGRESSION at {name}: portfolio {got:.2f}s > "
                      f"{limit:.2f}s (1.1x best fixed + slack)",
                      file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
