"""Table III — equivalence checking of *buggy versions*.

Bugs are injected exactly as the paper describes ("modifying the addresses
of accesses on shared variables or the guards of conditional statements"):
the target kernel of each pair gets a single-site address mutation.  The
non-parameterized checker hunts the bug at concrete n; the parameterized
checker uses fast bug hunting (Section IV-D).

Expected shape: the parameterized method finds each bug in well under a
second, independent of n; the non-parameterized method degrades as n grows
(the paper's Table III).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tables import table3_cell
from repro.check.result import Verdict

FULL = os.environ.get("PUGPARA_BENCH_FULL") == "1"

TITLE = ("Table III — equivalence checking, buggy versions "
         "(* = bug found and replay-confirmed)")
HEADERS = ["Kernel", "np n=4", "np n=8", "np n=16", "param"]

if FULL:
    CELLS = [
        *[("Transpose", w, mode, n)
          for w in (16, 32)
          for mode, n in [("nonparam", 4), ("nonparam", 8), ("nonparam", 16),
                          ("param", None)]],
        *[("Reduction", w, mode, n)
          for w in (8, 16, 32)
          for mode, n in [("nonparam", 4), ("nonparam", 8), ("nonparam", 16),
                          ("param", None)]],
    ]
else:
    CELLS = [
        ("Transpose", 8, "nonparam", 4),
        ("Transpose", 8, "nonparam", 16),
        ("Transpose", 8, "param", None),
        ("Transpose", 16, "param", None),
        ("Reduction", 8, "nonparam", 4),
        ("Reduction", 8, "nonparam", 8),
        ("Reduction", 8, "param", None),
        ("Reduction", 16, "param", None),
    ]


def _column(mode: str, n: int | None) -> str:
    return f"np n={n}" if mode == "nonparam" else "param"


@pytest.mark.parametrize("pair,width,mode,n", CELLS,
                         ids=[f"{p}-{w}b-{_column(m, n)}"
                              for p, w, m, n in CELLS])
def test_table3_cell(benchmark, table_acc, pair, width, mode, n):
    acc = table_acc(TITLE, HEADERS)
    cell = benchmark.pedantic(
        lambda: table3_cell(pair, width, mode, n), rounds=1, iterations=1)
    acc.put(f"{pair} ({width}b)", _column(mode, n), cell)
    assert cell.verdict in (Verdict.BUG, Verdict.TIMEOUT, Verdict.UNKNOWN), \
        "a buggy pair must never verify"
    if mode == "param":
        # the paper's headline: parameterized bug hunting is fast
        assert cell.verdict is Verdict.BUG
