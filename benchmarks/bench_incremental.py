#!/usr/bin/env python
"""Benchmark shared-prefix incremental solving and CNF preprocessing.

Runs a suite of race and equivalence checks three ways —

* ``oneshot``      — the non-incremental facade (``incremental=False``);
* ``incremental``  — shared-prefix assumption solving, no preprocessing;
* ``incremental_preprocess`` — incremental plus the SatELite-style pass;

all at ``jobs=1`` with caching off, so the columns isolate the solving
strategy from parallel fan-out.  Each cell is run ``--repeats`` times and
the minimum wall time is kept (the suite is deterministic; the minimum is
the least noisy estimator on a shared machine).

Writes ``BENCH_incremental.json`` with per-cell times and verdicts, whole
suite totals, and the headline speedup computed over the *multi-VC* cells
(``queries >= 8``) — the batches with enough shared-prefix queries for
incremental solving to amortize; single-VC cells can only show parity.

Verdicts must be identical across all three modes; any mismatch fails the
run.  ``--check-regression`` additionally fails if the incremental column
is more than 1.1x slower than one-shot on any cell (with a small absolute
slack for sub-second cells), which is how CI keeps the incremental path
honest.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--smoke]
        [--repeats N] [--check-regression] [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.configs import reduction_assumptions, transpose_assumptions
from repro.check.equivalence import check_equivalence
from repro.check.races import check_races
from repro.kernels import load
from repro.lang import LaunchConfig

TRANSPOSE_CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
                  "scalars": {"width": 4, "height": 4}}
REDUCE_CONC = {"bdim": (8, 1, 1), "gdim": (1, 1)}
TIMEOUT = 300.0

MODES = (
    ("oneshot", {"incremental": False}),
    ("incremental", {"incremental": True, "preprocess": False}),
    ("incremental_preprocess", {"incremental": True, "preprocess": True}),
)

#: Cells whose batches carry at least this many VCs count toward the
#: headline (multi-VC) speedup.
MULTI_VC_THRESHOLD = 8

#: Regression gate: incremental must not exceed
#: ``RATIO * oneshot + SLACK`` seconds on any cell.
REGRESSION_RATIO = 1.1
REGRESSION_SLACK = 0.2


def _suite(smoke: bool):
    """(name, callable(**mode_kwargs)) pairs — the benchmark workload."""
    _, naive_t = load("naiveTranspose")
    _, opt_t = load("optimizedTranspose")
    _, naive_r = load("naiveReduce")
    _, opt_r = load("optimizedReduce")

    def races(info, width, builder, conc):
        return lambda **kw: check_races(
            info, width, assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=1, cache=False, **kw)

    def equiv_param(src, tgt, width, builder, conc):
        return lambda **kw: check_equivalence(
            src, tgt, method="param", width=width,
            assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=1, cache=False, **kw)

    def equiv_nonparam(src, tgt, config, scalars):
        return lambda **kw: check_equivalence(
            src, tgt, method="nonparam", config=config,
            scalar_values=scalars, timeout=TIMEOUT, jobs=1, cache=False,
            **kw)

    # The w32 reduction cells are in the smoke set deliberately: they are
    # the solver-core speed gate (heaviest CDCL work per query), so CI's
    # smoke run exercises the regression check where it matters most.
    cells = [
        ("races/naiveTranspose/w8",
         races(naive_t, 8, transpose_assumptions, TRANSPOSE_CONC)),
        ("races/optimizedReduce/w16",
         races(opt_r, 16, reduction_assumptions, REDUCE_CONC)),
        ("races/naiveReduce/w16",
         races(naive_r, 16, reduction_assumptions, REDUCE_CONC)),
        ("races/optimizedReduce/w32",
         races(opt_r, 32, reduction_assumptions, REDUCE_CONC)),
        ("races/naiveReduce/w32",
         races(naive_r, 32, reduction_assumptions, REDUCE_CONC)),
        ("equiv-param/Reduce/w8",
         equiv_param(naive_r, opt_r, 8, reduction_assumptions,
                     REDUCE_CONC)),
    ]
    if not smoke:
        cells += [
            ("races/optimizedTranspose/w16",
             races(opt_t, 16, transpose_assumptions, TRANSPOSE_CONC)),
            ("equiv-param/Transpose/w8",
             equiv_param(naive_t, opt_t, 8, transpose_assumptions,
                         TRANSPOSE_CONC)),
            ("equiv-nonparam/Transpose4",
             equiv_nonparam(naive_t, opt_t,
                            LaunchConfig(bdim=(2, 2, 1), gdim=(2, 2),
                                         width=8),
                            {"width": 4, "height": 4})),
        ]
    return cells


def _run_cell(fn, kwargs, repeats: int):
    best = None
    outcome = None
    for _ in range(repeats):
        start = time.monotonic()
        outcome = fn(**kwargs)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    solver = outcome.stats.get("solver", {})
    return {"verdict": outcome.verdict.name, "elapsed": round(best, 4),
            "queries": solver.get("queries", 0),
            # Machine-independent work measures: wall time varies with the
            # host, propagation/conflict counts pin down the search itself.
            "propagations": int(solver.get("propagations", 0)),
            "conflicts": int(solver.get("conflicts", 0))}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "BENCH_incremental.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="small cell set for CI")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per cell; minimum wall time is kept")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if incremental is >1.1x slower than "
                             "one-shot on any cell")
    args = parser.parse_args(argv)

    suite = _suite(args.smoke)
    report = {"smoke": args.smoke, "repeats": args.repeats,
              "suite_size": len(suite), "cells": {}}
    totals = {mode: 0.0 for mode, _ in MODES}
    multi_vc = {mode: 0.0 for mode, _ in MODES}
    multi_vc_cells = []

    for name, fn in suite:
        cell = {}
        for mode, kwargs in MODES:
            print(f"{name} [{mode}] ...", flush=True)
            cell[mode] = _run_cell(fn, kwargs, args.repeats)
            totals[mode] += cell[mode]["elapsed"]
        verdicts = {cell[mode]["verdict"] for mode, _ in MODES}
        if len(verdicts) != 1:
            print(f"VERDICT MISMATCH at {name}: "
                  + ", ".join(f"{m}={cell[m]['verdict']}"
                              for m, _ in MODES), file=sys.stderr)
            return 1
        if cell["oneshot"]["queries"] >= MULTI_VC_THRESHOLD:
            multi_vc_cells.append(name)
            for mode, _ in MODES:
                multi_vc[mode] += cell[mode]["elapsed"]
        report["cells"][name] = cell

    report["totals"] = {m: round(t, 4) for m, t in totals.items()}
    report["multi_vc_cells"] = multi_vc_cells
    report["multi_vc_totals"] = {m: round(t, 4)
                                 for m, t in multi_vc.items()}
    report["speedup_incremental"] = round(
        totals["oneshot"] / totals["incremental"], 3) \
        if totals["incremental"] else None
    report["speedup_incremental_preprocess"] = round(
        totals["oneshot"] / totals["incremental_preprocess"], 3) \
        if totals["incremental_preprocess"] else None
    report["multi_vc_speedup_incremental_preprocess"] = round(
        multi_vc["oneshot"] / multi_vc["incremental_preprocess"], 3) \
        if multi_vc["incremental_preprocess"] else None

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for mode, _ in MODES:
        print(f"{mode:24s} {totals[mode]:8.2f}s")
    print(f"suite speedup (incr+pp)    "
          f"x{report['speedup_incremental_preprocess']}")
    print(f"multi-VC speedup (incr+pp) "
          f"x{report['multi_vc_speedup_incremental_preprocess']} "
          f"over {multi_vc_cells}")
    print(f"wrote {os.path.abspath(args.output)}")

    if args.check_regression:
        failed = False
        for name, cell in report["cells"].items():
            limit = (REGRESSION_RATIO * cell["oneshot"]["elapsed"]
                     + REGRESSION_SLACK)
            got = cell["incremental"]["elapsed"]
            if got > limit:
                print(f"REGRESSION at {name}: incremental {got:.2f}s > "
                      f"{limit:.2f}s (1.1x one-shot + slack)",
                      file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
