#!/usr/bin/env python
"""Benchmark the verification server: cold vs warm vs in-flight-deduped.

Starts a real server subprocess (HTTP transport, one warm worker, a
sharded disk cache) and measures three request regimes —

* ``cold``  — the first submission ever: full parse/encode/solve;
* ``warm``  — identical resubmissions: answered from the shared cache by
  an already-warm worker (requests/sec, p50/p95);
* ``dedup`` — N identical requests fired concurrently at a fresh server:
  one solve, N-1 in-flight joins.

Then proves the shared-cache story: two server processes pointing at ONE
cache directory answer the same request set with bit-identical verdicts
and leave zero corrupt or quarantined entries behind.

Writes ``BENCH_serve.json`` next to the repo root.  Exits nonzero when
the warm speedup drops below 5x or any shared-cache entry is damaged.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.kernels import KERNELS
from repro.serve.shards import scan_shards, verify_shards

REQUEST = {
    "command": "races",
    "source": KERNELS["optimizedTranspose"].source,
    "width": 8, "pair": "Transpose",
    "cbdim": [2, 2, 1], "cgdim": [2, 2],
    "scalars": {"width": 4, "height": 4}, "timeout": 300,
}


def _post(base: str, payload: dict) -> tuple[float, dict]:
    req = urllib.request.Request(
        f"{base}/v1/check", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    start = time.monotonic()
    try:
        with urllib.request.urlopen(req, timeout=600) as resp:
            body = json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = json.loads(exc.read())
    return time.monotonic() - start, body


class _Server:
    def __init__(self, cache_dir: str, workers: int = 1) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.serve", "--port", "0",
             "--workers", str(workers), "--cache-dir", cache_dir],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(
                os.path.dirname(__file__), "..", "src")})
        ready = self.proc.stdout.readline().strip()
        port = int(ready.split("http=127.0.0.1:")[1].split()[0])
        self.base = f"http://127.0.0.1:{port}"

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self.proc.kill()
            self.proc.wait(timeout=10)


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)
    return {
        "p50": round(statistics.median(ordered), 4),
        "p95": round(ordered[min(len(ordered) - 1,
                                 int(0.95 * len(ordered)))], 4),
        "mean": round(statistics.fmean(ordered), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__),
                                             "..", "BENCH_serve.json"))
    parser.add_argument("--warm-requests", type=int, default=10)
    parser.add_argument("--dedup-requests", type=int, default=6)
    args = parser.parse_args(argv)
    report: dict = {"request": "races/optimizedTranspose (+C, Transpose "
                               "pair)", "cpu_count": os.cpu_count()}

    # ---- cold vs warm on one server, one fresh cache -------------------
    cache_dir = tempfile.mkdtemp(prefix="pugpara_bench_serve_")
    try:
        print("cold + warm pass (1 server, 1 warm worker) ...", flush=True)
        server = _Server(cache_dir)
        try:
            cold_s, cold_body = _post(server.base, REQUEST)
            assert cold_body.get("verdict"), cold_body
            warm_samples = []
            for _ in range(args.warm_requests):
                elapsed, body = _post(server.base, REQUEST)
                assert body["verdict"] == cold_body["verdict"], body
                warm_samples.append(elapsed)
        finally:
            server.stop()
        warm = _percentiles(warm_samples)
        warm["n"] = len(warm_samples)
        warm["rps"] = round(len(warm_samples) / sum(warm_samples), 2)
        speedup = cold_s / statistics.median(warm_samples)
        report["cold"] = {"seconds": round(cold_s, 4),
                          "verdict": cold_body["verdict"]}
        report["warm"] = warm
        report["speedup_warm_vs_cold"] = round(speedup, 2)
        print(f"  cold {cold_s:.3f}s, warm p50 {warm['p50']}s "
              f"-> {speedup:.1f}x", flush=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # ---- in-flight dedup on a fresh server + fresh cache ---------------
    cache_dir = tempfile.mkdtemp(prefix="pugpara_bench_serve_")
    try:
        print(f"dedup pass ({args.dedup_requests} concurrent identical "
              "requests) ...", flush=True)
        server = _Server(cache_dir)
        try:
            with ThreadPoolExecutor(args.dedup_requests) as tpe:
                futures = [tpe.submit(_post, server.base, REQUEST)
                           for _ in range(args.dedup_requests)]
                results = [f.result() for f in futures]
        finally:
            server.stop()
        latencies = [elapsed for elapsed, _ in results]
        verdicts = {body["verdict"] for _, body in results}
        deduped = sum(1 for _, body in results if body.get("deduped"))
        dedup = _percentiles(latencies)
        dedup.update({"n": len(results), "deduped": deduped,
                      "verdicts": sorted(verdicts)})
        report["dedup"] = dedup
        print(f"  {deduped}/{len(results) - 1} followers joined in "
              f"flight, p95 {dedup['p95']}s", flush=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # ---- two servers, ONE shared cache directory -----------------------
    cache_dir = tempfile.mkdtemp(prefix="pugpara_bench_serve_shared_")
    try:
        print("shared-cache pass (2 server processes, 1 directory) ...",
              flush=True)
        a = _Server(cache_dir)
        b = _Server(cache_dir)
        try:
            with ThreadPoolExecutor(2) as tpe:
                fa = tpe.submit(_post, a.base, REQUEST)
                fb = tpe.submit(_post, b.base, REQUEST)
                _, body_a = fa.result()
                _, body_b = fb.result()
            # and a second round, now warm through the shared store
            _, again_a = _post(a.base, REQUEST)
            _, again_b = _post(b.base, REQUEST)
        finally:
            a.stop()
            b.stop()
        identical = (body_a["verdict"] == body_b["verdict"]
                     == again_a["verdict"] == again_b["verdict"]
                     and body_a["key"] == body_b["key"])
        audit = verify_shards(cache_dir)
        inventory = scan_shards(cache_dir)
        report["shared_cache"] = {
            "servers": 2, "verdicts_identical": identical,
            "verdict": body_a["verdict"],
            "entries": inventory["entries"],
            "corrupt": inventory["corrupt"], "bad": audit["bad"],
        }
        print(f"  identical={identical}, entries="
              f"{inventory['entries']}, corrupt={inventory['corrupt']}",
              flush=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")

    failures = []
    if report["speedup_warm_vs_cold"] < 5.0:
        failures.append("warm resubmission is not >=5x faster than cold")
    sc = report["shared_cache"]
    if not sc["verdicts_identical"]:
        failures.append("shared-cache servers disagreed")
    if sc["corrupt"] or sc["bad"]:
        failures.append("shared cache holds damaged entries")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
