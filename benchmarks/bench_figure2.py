"""Figure 2 — "Instantiation of conditional assignments".

The figure shows an expression reading an array twice (``v[a1] op v[a2]``)
after a CA ``p ? v[e] := w``: each read gets its *own* fresh thread variable
(s1 for the first read, s2 for the second), with matching constraints
``a_i = e(s_i)``.  This benchmark regenerates the diagram from the real
resolution of the naive reduction body (``sdata[tid.x] += sdata[tid.x+k]``,
which reads sdata twice) and asserts the freshness property: the two reads
really are resolved against two distinct thread instances.
"""

from __future__ import annotations

from repro.bench.harness import bench_timeout
from repro.kernels import load
from repro.param.ca import LoopModel, extract_model
from repro.param.geometry import Geometry, ThreadInstance
from repro.param.resolve import (
    GroupContext, PrestateStore, instantiate, resolve_value,
)
from repro.smt import And, BVVar, CheckResult, Not, Solver, to_str


def build():
    _, info = load("naiveReduce")
    geo = Geometry.create(8)
    model = extract_model(info, geo, {}, hint="f2")
    loop = [s for s in model.segments if isinstance(s, LoopModel)][0]
    (body,) = loop.body
    (ca,) = body.cas
    prestate = PrestateStore(1, 8, set())

    def prove(premises, obligations):
        s = Solver(timeout=bench_timeout())
        s.add(*geo.base_assumptions(), *premises, Not(And(*obligations)))
        return s.check() is CheckResult.UNSAT

    ctx = GroupContext(
        model=model, plains=list(loop.body), geometry=geo, hint="f2",
        prestate=lambda a, addr, bid: prestate.select(
            "k", a, info.arrays[a].shared, addr, bid),
        prove=prove)
    return model, geo, ctx, ca


def instantiation_is_fresh() -> tuple[bool, str]:
    model, geo, ctx, ca = build()
    reader = ThreadInstance.fresh(geo, "rd")
    inst = instantiate(ca, model, reader)
    assert len(inst.reads) == 2, "the += body reads sdata twice"
    atoms = [r.atom for r in inst.reads]
    fresh = atoms[0] is not atoms[1]
    lines = [
        "Figure 2 — instantiation of conditional assignments "
        "(from the real naiveReduce loop body):",
        "",
        f"  CA:  {to_str(ca.guard, 6)} ?",
        f"       sdata[{to_str(ca.address[0], 6)}] := "
        f"{to_str(ca.value, 6)}",
        "",
        "  the value reads sdata at two addresses:",
    ]
    for i, read in enumerate(inst.reads, 1):
        lines.append(f"    read {i}: sdata[{to_str(read.address[0], 6)}]"
                     f"  -> fresh atom {to_str(read.atom, 4)}")
    lines += [
        "",
        "  p(s1) ? v[e(s1)] := w(s1)      p(s2) ? v[e(s2)] := w(s2)",
        "        \\  a1 = e(s1)                /  a2 = e(s2)",
        "         \\                          /",
        "          P( v[a1]  op  v[a2] )   — one fresh thread per read",
    ]
    return fresh, "\n".join(lines)


def test_figure2(benchmark):
    fresh, diagram = benchmark.pedantic(instantiation_is_fresh,
                                        rounds=1, iterations=1)
    assert fresh, "the two reads shared one atom: instantiation is broken"
    print()
    print(diagram)
