"""Table II — equivalence checking of the bug-free SDK kernel pairs.

Each benchmark is one cell: the non-parameterized encoding at n threads
(optionally with the ``+C.`` input concretization the paper applies at
n >= 16) or the parameterized encoding (``-C.`` fully symbolic / ``+C.``
pinned geometry).  The module prints the assembled table at the end.

Expected shape (the paper's, reproduced in EXPERIMENTS.md):

* non-parameterized times grow steeply with n and bit width; large cells
  hit T.O;
* parameterized +C. is fast at every width; parameterized -C. is fast for
  Reduction and T.O for Transpose (nonlinear 2-D addressing), exactly as in
  the paper's Table II.

The quick profile below covers 8-bit rows with n up to 8 plus the
parameterized cells; set ``PUGPARA_BENCH_FULL=1`` (and a larger
``PUGPARA_BENCH_TIMEOUT``) for all widths and n up to 32.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import format_cell
from repro.bench.tables import table2_cell
from repro.check.result import Verdict

FULL = os.environ.get("PUGPARA_BENCH_FULL") == "1"

TITLE = ("Table II — equivalence checking, bug-free kernels "
         "(* = not equivalent; T.O = budget exhausted)")
HEADERS = ["Kernel", "np n=4", "np n=8", "np n=16", "np n=16 +C",
           "np n=32 +C", "param -C", "param +C"]

if FULL:
    CELLS = [
        *[("Transpose", w, mode, n)
          for w in (8, 16, 32)
          for mode, n in [("nonparam", 4), ("nonparam", 8), ("nonparam", 16),
                          ("nonparam+C", 16), ("nonparam+C", 32),
                          ("param", None), ("param+C", None)]],
        *[("Reduction", w, mode, n)
          for w in (8, 12)
          for mode, n in [("nonparam", 4), ("nonparam", 8), ("nonparam", 16),
                          ("nonparam+C", 16), ("nonparam+C", 32),
                          ("param", None), ("param+C", None)]],
    ]
else:
    CELLS = [
        ("Transpose", 8, "nonparam", 4),
        ("Transpose", 8, "nonparam", 8),       # non-square: the '*' row
        ("Transpose", 8, "nonparam+C", 16),
        ("Transpose", 8, "param", None),       # expected T.O (paper agrees)
        ("Transpose", 8, "param+C", None),
        ("Transpose", 16, "param+C", None),
        ("Reduction", 8, "nonparam", 4),
        ("Reduction", 8, "nonparam", 8),
        ("Reduction", 8, "param", None),
        ("Reduction", 8, "param+C", None),
        ("Reduction", 12, "param", None),
    ]


def _column(mode: str, n: int | None) -> str:
    if mode == "nonparam":
        return f"np n={n}"
    if mode == "nonparam+C":
        return f"np n={n} +C"
    return "param -C" if mode == "param" else "param +C"


@pytest.mark.parametrize("pair,width,mode,n", CELLS,
                         ids=[f"{p}-{w}b-{_column(m, n)}"
                              for p, w, m, n in CELLS])
def test_table2_cell(benchmark, table_acc, pair, width, mode, n):
    acc = table_acc(TITLE, HEADERS)
    cell = benchmark.pedantic(
        lambda: table2_cell(pair, width, mode, n), rounds=1, iterations=1)
    acc.put(f"{pair} ({width}b)", _column(mode, n), cell)
    # Bug-free rows must never report a bug on a square/pow2 configuration;
    # the n=8 transpose row is the paper's '*' (non-square) case.
    if pair == "Transpose" and mode == "nonparam" and n == 8:
        assert cell.verdict in (Verdict.BUG, Verdict.TIMEOUT,
                                Verdict.UNKNOWN)
    else:
        assert cell.verdict in (Verdict.VERIFIED, Verdict.TIMEOUT,
                                Verdict.UNKNOWN), \
            f"unexpected verdict {cell.verdict} for a bug-free pair"
