"""Figure 1 — "Calculating CAs over multiple threads".

The figure shows how the value of an output cell ``odata[k]`` is an
exclusive case split over the (at most one, by race freedom) thread whose
conditional assignment hits the cell, with the old value as the final
alternative.  This benchmark regenerates that diagram from the *real* CA
objects extracted from the naive transpose kernel, and verifies the
exclusivity claim ("at most one thread satisfies p") with the SMT solver.
"""

from __future__ import annotations

from repro.bench.harness import bench_timeout
from repro.kernels import load
from repro.param.ca import extract_model
from repro.param.geometry import Geometry, ThreadInstance
from repro.param.resolve import instantiate
from repro.check.configs import transpose_assumptions
from repro.smt import (
    And, BVVar, CheckResult, Eq, Ne, Or, Solver, to_str,
)


def render_figure1() -> str:
    _, info = load("naiveTranspose")
    geo = Geometry.create(8)
    inputs = {p: BVVar(f"f1.{p}", 8) for p in info.scalar_params}
    model = extract_model(info, geo, inputs, hint="f1")
    (ca,) = model.segments[0].cas
    k = BVVar("k", 8)
    s1 = ThreadInstance.fresh(geo, "s1")
    s2 = ThreadInstance.fresh(geo, "s2")
    i1 = instantiate(ca, model, s1)
    i2 = instantiate(ca, model, s2)
    p1 = And(s1.validity(), i1.guard, Eq(i1.address[0], k))
    lines = [
        "Figure 1 — calculating odata[k] over multiple threads "
        "(from the real naiveTranspose CA):",
        "",
        f"  CA:  {to_str(ca.guard, 8)} ?",
        f"       odata[{to_str(ca.address[0], 8)}] := {to_str(ca.value, 8)}",
        "",
        "  odata[k] =   p(s1) (+) p(s2) (+) ... (+) p(sn) (+) else",
        "               |                                    |",
        f"               value(s1) = {to_str(i1.value, 6)}",
        "               ...                                  old odata[k]",
        "",
        f"  where p(si) =  {to_str(p1, 6)}",
    ]
    return "\n".join(lines)


def exclusivity_holds() -> bool:
    """SMT check of the figure's (+)-exclusivity: two distinct valid threads
    cannot both satisfy p for the same cell (race freedom of the CA)."""
    _, info = load("naiveTranspose")
    geo = Geometry.create(8)
    inputs = {p: BVVar(f"f1.{p}", 8) for p in info.scalar_params}
    model = extract_model(info, geo, inputs, hint="f1x")
    (ca,) = model.segments[0].cas
    k = BVVar("f1.k", 8)
    s1 = ThreadInstance.fresh(geo, "x1")
    s2 = ThreadInstance.fresh(geo, "x2")
    i1 = instantiate(ca, model, s1)
    i2 = instantiate(ca, model, s2)
    distinct = Or(*[Ne(a, b) for a, b in
                    zip(s1.axis_vars(), s2.axis_vars())])
    solver = Solver(timeout=bench_timeout())
    # Pin the geometry (the paper's +C mode) — the fully symbolic variant of
    # this nonlinear query is exactly what times out in Table II's -C rows.
    solver.add(*geo.base_assumptions(),
               *transpose_assumptions(geo, inputs),
               *geo.concretize((2, 2, 1), (2, 2)),
               Eq(inputs["width"], 4), Eq(inputs["height"], 4),
               s1.validity(), s2.validity(), distinct,
               i1.guard, i2.guard,
               Eq(i1.address[0], k), Eq(i2.address[0], k))
    return solver.check() is CheckResult.UNSAT


def test_figure1(benchmark):
    ok = benchmark.pedantic(exclusivity_holds, rounds=1, iterations=1)
    assert ok, "two distinct threads hit the same output cell"
    print()
    print(render_figure1())
