#!/usr/bin/env python
"""Benchmark the dispatch layer: parallel fan-out and the query cache.

Runs a small suite of race and equivalence checks three ways —

* ``serial``   — ``jobs=1``, caching off (the pre-dispatch baseline);
* ``parallel`` — ``jobs=cpu_count()``, caching off;
* ``warm``     — ``jobs=1`` against a pre-populated disk cache;

and writes ``BENCH_dispatch.json`` next to the repo root with per-check and
aggregate wall times plus the two headline speedups.  The machine's CPU
count is recorded because the parallel number is only meaningful relative
to it — on a single-core container the parallel column measures dispatch
overhead, not speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_dispatch.py [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.configs import reduction_assumptions, transpose_assumptions
from repro.check.equivalence import check_equivalence
from repro.check.races import check_races
from repro.kernels import load
from repro.lang import LaunchConfig
from repro.smt.qcache import QueryCache

TRANSPOSE_CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
                  "scalars": {"width": 4, "height": 4}}
REDUCE_CONC = {"bdim": (8, 1, 1), "gdim": (1, 1)}
TIMEOUT = 300.0


def _suite():
    """(name, callable(jobs, cache)) pairs — the benchmark workload."""
    _, naive_t = load("naiveTranspose")
    _, opt_t = load("optimizedTranspose")
    _, naive_r = load("naiveReduce")
    _, opt_r = load("optimizedReduce")

    def races(info, builder, conc):
        return lambda jobs, cache: check_races(
            info, 8, assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=jobs, cache=cache)

    def equiv_nonparam(src, tgt, scalars, gdim=(1, 1)):
        config = LaunchConfig(bdim=(2, 2, 1), gdim=gdim, width=8)
        return lambda jobs, cache: check_equivalence(
            src, tgt, method="nonparam", config=config,
            scalar_values=scalars, timeout=TIMEOUT, jobs=jobs, cache=cache)

    def equiv_param(src, tgt, builder, conc):
        return lambda jobs, cache: check_equivalence(
            src, tgt, method="param", width=8, assumption_builder=builder,
            concretize=conc, timeout=TIMEOUT, jobs=jobs, cache=cache)

    return [
        ("races/naiveTranspose",
         races(naive_t, transpose_assumptions, TRANSPOSE_CONC)),
        ("races/optimizedTranspose",
         races(opt_t, transpose_assumptions, TRANSPOSE_CONC)),
        ("races/optimizedReduce",
         races(opt_r, reduction_assumptions, REDUCE_CONC)),
        ("equiv-nonparam/Transpose2",
         equiv_nonparam(naive_t, opt_t, {"width": 2, "height": 2})),
        ("equiv-nonparam/Transpose4",
         equiv_nonparam(naive_t, opt_t, {"width": 4, "height": 4},
                        gdim=(2, 2))),
        ("equiv-param/Reduce",
         equiv_param(naive_r, opt_r, reduction_assumptions, REDUCE_CONC)),
        ("equiv-param/Transpose",
         equiv_param(naive_t, opt_t, transpose_assumptions, TRANSPOSE_CONC)),
    ]


def _run(suite, jobs, cache):
    cells = {}
    total = 0.0
    for name, fn in suite:
        start = time.monotonic()
        outcome = fn(jobs, cache)
        elapsed = time.monotonic() - start
        total += elapsed
        cells[name] = {"verdict": outcome.verdict.name,
                       "elapsed": round(elapsed, 4)}
    return cells, total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "BENCH_dispatch.json"))
    parser.add_argument("--jobs", type=int,
                        default=max(4, os.cpu_count() or 1),
                        help="worker count for the parallel pass "
                             "(default: max(4, cpu_count))")
    args = parser.parse_args(argv)

    suite = _suite()
    report = {"cpu_count": os.cpu_count(), "parallel_jobs": args.jobs,
              "suite_size": len(suite)}

    print(f"serial pass (jobs=1, no cache) ...", flush=True)
    serial_cells, serial_total = _run(suite, jobs=1, cache=False)

    print(f"parallel pass (jobs={args.jobs}, no cache) ...", flush=True)
    parallel_cells, parallel_total = _run(suite, jobs=args.jobs, cache=False)

    cache_dir = tempfile.mkdtemp(prefix="pugpara_bench_cache_")
    try:
        print("cold pass (jobs=1, populating disk cache) ...", flush=True)
        _, cold_total = _run(suite, jobs=1, cache=QueryCache(disk_dir=cache_dir))
        print("warm pass (jobs=1, fresh process-level cache, disk warm) ...",
              flush=True)
        warm_cells, warm_total = _run(suite, jobs=1,
                                      cache=QueryCache(disk_dir=cache_dir))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    for (name, _), s, p, w in zip(suite, serial_cells.values(),
                                  parallel_cells.values(),
                                  warm_cells.values()):
        if not (s["verdict"] == p["verdict"] == w["verdict"]):
            print(f"VERDICT MISMATCH at {name}: {s} vs {p} vs {w}",
                  file=sys.stderr)
            return 1

    report["serial"] = {"total": round(serial_total, 4),
                        "cells": serial_cells}
    report["parallel"] = {"total": round(parallel_total, 4),
                          "cells": parallel_cells}
    report["cold"] = {"total": round(cold_total, 4)}
    report["warm"] = {"total": round(warm_total, 4), "cells": warm_cells}
    report["speedup_parallel"] = round(serial_total / parallel_total, 3) \
        if parallel_total else None
    report["speedup_warm"] = round(cold_total / warm_total, 3) \
        if warm_total else None

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"serial   {serial_total:8.2f}s")
    print(f"parallel {parallel_total:8.2f}s  "
          f"(x{report['speedup_parallel']} at jobs={args.jobs})")
    print(f"cold     {cold_total:8.2f}s")
    print(f"warm     {warm_total:8.2f}s  (x{report['speedup_warm']})")
    print(f"wrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
