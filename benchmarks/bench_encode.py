#!/usr/bin/env python
"""Benchmark the front end: VC templates, interning, and pipelining.

Two columns isolate the cross-configuration template cache
(:mod:`repro.encode.templates`):

* ``cold``      — ``PUGPARA_TEMPLATES=0``: every cell pays symbolic
  execution and race-pair enumeration from scratch;
* ``templates`` — templates on, store reset at the start of each pass:
  the first cell of every (kernel, width) ladder misses, every other
  cell specializes the stored template.

The workload is the template's home turf: width ladders and
concretization sweeps over the paper's kernels, i.e. many cells per
(kernel, check, width) key.  Per-cell the report records wall time, the
front-end's own ``stats["encode"]`` block (symexec seconds, hit/miss),
and the verdict; verdicts must be identical across columns — template
reuse is exact, not approximate — and any mismatch fails the run.

The headline number is ``encode_speedup``: summed symexec seconds in the
``cold`` column over the ``templates`` column, across the ladder cells.
``--check-regression`` fails the run if it drops below 2x — a ladder of
``k`` cells should approach ``k``x, so 2x holds comfortably and still
catches a broken cache.

A second section pins encode/solve pipelining: one multi-VC race check
runs with ``PUGPARA_STREAM`` on and off, and the report compares
time-to-first-verdict (``stats["encode"]["first_verdict_s"]``).

Usage::

    PYTHONPATH=src python benchmarks/bench_encode.py [--smoke]
        [--repeats N] [--check-regression] [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.configs import reduction_assumptions, transpose_assumptions
from repro.check.races import check_races
from repro.encode.templates import TemplateStore, set_default_template_store
from repro.kernels import load
from repro.smt.terms import intern_stats

TIMEOUT = 300.0

REDUCE_CONCS = [
    {"bdim": (8, 1, 1), "gdim": (1, 1)},
    {"bdim": (4, 1, 1), "gdim": (1, 1)},
    {"bdim": (16, 1, 1), "gdim": (1, 1)},
]
TRANSPOSE_CONCS = [
    {"bdim": (2, 2, 1), "gdim": (2, 2), "scalars": {"width": 4,
                                                    "height": 4}},
    {"bdim": (2, 2, 1), "gdim": (1, 1), "scalars": {"width": 2,
                                                    "height": 2}},
]

#: The template gate: summed cold symexec over summed warm symexec
#: across the ladder cells must stay above this.
ENCODE_SPEEDUP_FLOOR = 2.0

#: Streaming gate: first verdict under streaming must not exceed
#: ``RATIO * batch + SLACK`` (it should be well below batch, but the
#: gate only has to catch a broken pipeline, not measure it).
STREAM_RATIO = 1.5
STREAM_SLACK = 0.2


def _suite(smoke: bool):
    """Ladder cells: (name, callable()) in ladder order — several cells
    per (kernel, width) so the template cache has something to share."""
    _, naive_t = load("naiveTranspose")
    _, opt_r = load("optimizedReduce")
    _, naive_r = load("naiveReduce")

    def races(info, width, builder, conc):
        return lambda: check_races(
            info, width, assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=1, cache=False)

    cells = []
    for i, conc in enumerate(REDUCE_CONCS):
        cells.append((f"races/optimizedReduce/w8/c{i}",
                      races(opt_r, 8, reduction_assumptions, conc)))
    for i, conc in enumerate(TRANSPOSE_CONCS):
        cells.append((f"races/naiveTranspose/w8/c{i}",
                      races(naive_t, 8, transpose_assumptions, conc)))
    if not smoke:
        for i, conc in enumerate(REDUCE_CONCS):
            cells.append((f"races/optimizedReduce/w16/c{i}",
                          races(opt_r, 16, reduction_assumptions, conc)))
        for i, conc in enumerate(REDUCE_CONCS[:2]):
            cells.append((f"races/naiveReduce/w8/c{i}",
                          races(naive_r, 8, reduction_assumptions, conc)))
    return cells


def _run_pass(cells, env: dict):
    """One full suite pass under ``env``; fresh template store, so the
    pass sees exactly one miss per (kernel, width) ladder."""
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update(env)
    set_default_template_store(TemplateStore())
    out = {}
    try:
        for name, fn in cells:
            start = time.monotonic()
            outcome = fn()
            elapsed = time.monotonic() - start
            enc = outcome.stats.get("encode", {})
            out[name] = {
                "verdict": outcome.verdict.name,
                "elapsed": round(elapsed, 4),
                "symexec_s": round(enc.get("symexec_time", 0.0), 4),
                "template": enc.get("template"),
            }
    finally:
        set_default_template_store(None)
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    return out


def _best_pass(cells, env, repeats):
    best = None
    for _ in range(repeats):
        got = _run_pass(cells, env)
        if best is None or (sum(c["elapsed"] for c in got.values())
                            < sum(c["elapsed"] for c in best.values())):
            best = got
    return best


def _stream_section(repeats: int):
    """Time-to-first-verdict of one multi-VC check, streamed vs batch."""
    _, opt_r = load("optimizedReduce")
    conc = {"bdim": (8, 1, 1), "gdim": (1, 1)}
    section = {}
    for mode, flag in (("stream", "1"), ("batch", "0")):
        saved = os.environ.get("PUGPARA_STREAM")
        os.environ["PUGPARA_STREAM"] = flag
        try:
            best = None
            for _ in range(repeats):
                out = check_races(opt_r, 16,
                                  assumption_builder=reduction_assumptions,
                                  concretize=conc, timeout=TIMEOUT,
                                  jobs=1, cache=False)
                first = out.stats.get("encode", {}).get("first_verdict_s")
                if first is not None:
                    best = first if best is None else min(best, first)
            section[mode] = {"verdict": out.verdict.name,
                             "first_verdict_s": round(best, 4)
                             if best is not None else None}
        finally:
            if saved is None:
                os.environ.pop("PUGPARA_STREAM", None)
            else:
                os.environ["PUGPARA_STREAM"] = saved
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "BENCH_encode.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="small cell set for CI")
    parser.add_argument("--repeats", type=int, default=2,
                        help="suite passes per column; fastest pass kept")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail below the 2x encode speedup floor or "
                             "on a broken streaming pipeline")
    args = parser.parse_args(argv)

    cells = _suite(args.smoke)
    print(f"{len(cells)} ladder cells, {args.repeats} pass(es) per column",
          flush=True)
    cold = _best_pass(cells, {"PUGPARA_TEMPLATES": "0"}, args.repeats)
    warm = _best_pass(cells, {"PUGPARA_TEMPLATES": "1"}, args.repeats)

    report = {"smoke": args.smoke, "repeats": args.repeats,
              "cells": {}, "interning": intern_stats()}
    mismatch = False
    for name, _ in cells:
        report["cells"][name] = {"cold": cold[name],
                                 "templates": warm[name]}
        if cold[name]["verdict"] != warm[name]["verdict"]:
            print(f"VERDICT MISMATCH at {name}: "
                  f"cold={cold[name]['verdict']} "
                  f"templates={warm[name]['verdict']}", file=sys.stderr)
            mismatch = True
    if mismatch:
        return 1

    cold_sym = sum(c["symexec_s"] for c in cold.values())
    warm_sym = sum(c["symexec_s"] for c in warm.values())
    hits = sum(1 for c in warm.values() if c["template"] == "hit")
    report["cold_symexec_s"] = round(cold_sym, 4)
    report["templates_symexec_s"] = round(warm_sym, 4)
    report["template_hits"] = hits
    report["encode_speedup"] = round(cold_sym / warm_sym, 3) \
        if warm_sym else None
    report["cold_elapsed_s"] = round(
        sum(c["elapsed"] for c in cold.values()), 4)
    report["templates_elapsed_s"] = round(
        sum(c["elapsed"] for c in warm.values()), 4)

    print("streaming section ...", flush=True)
    report["streaming"] = _stream_section(args.repeats)

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"cold symexec      {cold_sym:8.3f}s")
    print(f"templates symexec {warm_sym:8.3f}s  ({hits} hits)")
    print(f"encode speedup    x{report['encode_speedup']}")
    stream = report["streaming"]
    print(f"first verdict     stream "
          f"{stream['stream']['first_verdict_s']}s vs batch "
          f"{stream['batch']['first_verdict_s']}s")
    print(f"wrote {os.path.abspath(args.output)}")

    if args.check_regression:
        failed = False
        if (report["encode_speedup"] or 0) < ENCODE_SPEEDUP_FLOOR:
            print(f"REGRESSION: encode speedup "
                  f"x{report['encode_speedup']} below the "
                  f"x{ENCODE_SPEEDUP_FLOOR} floor", file=sys.stderr)
            failed = True
        sf = stream["stream"]["first_verdict_s"]
        bf = stream["batch"]["first_verdict_s"]
        if sf is None or bf is None:
            print("REGRESSION: missing first-verdict latency",
                  file=sys.stderr)
            failed = True
        elif sf > STREAM_RATIO * bf + STREAM_SLACK:
            print(f"REGRESSION: streaming first verdict {sf:.2f}s > "
                  f"{STREAM_RATIO}x batch ({bf:.2f}s) + slack",
                  file=sys.stderr)
            failed = True
        if stream["stream"]["verdict"] != stream["batch"]["verdict"]:
            print("REGRESSION: stream/batch verdict mismatch",
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
