"""Scaling benchmarks: the blow-up narratives behind the paper's tables.

* **non-parameterized encoding growth** — formula size (distinct DAG nodes
  and CNF clauses) of the serialized transpose as n grows: the store/ite
  chains mention every thread, which is exactly why the n-columns of
  Tables II/III explode while the parameterized encoding stays flat;
* **branch-heavy kernels** — the bitonic-sort remark ("will cause blow-up
  when the thread number is greater than 8" for GKLEE-style concrete-thread
  analyses): encoding cost vs. n for the most branch-heavy kernel in the
  suite.
"""

from __future__ import annotations

import pytest

from repro.encode.nonparam import encode_kernel
from repro.kernels import load
from repro.lang import LaunchConfig
from repro.smt import ArrayVar, BVConst, BVVar, Select, term_size
from repro.smt.arrays import eliminate_arrays
from repro.smt.simplify import simplify_all


def _encode_size(name: str, config: LaunchConfig,
                 scalar_values: dict[str, int]) -> dict[str, int]:
    _, info = load(name)
    width = config.width
    inputs = {p: BVConst(scalar_values[p], width) if p in scalar_values
              else BVVar(f"sc.{p}", width) for p in info.scalar_params}
    arrays = {a: ArrayVar(f"sc.{a}", width, width)
              for a in info.global_arrays}
    model = encode_kernel(info, config, inputs, arrays)
    cell = BVVar("sc.cell", width)
    outputs = [Select(arr, cell) for arr in model.final_globals.values()]
    raw = term_size(*outputs)
    flat, _ = eliminate_arrays(simplify_all(list(outputs)))
    flat = simplify_all(flat)
    reduced = term_size(*flat) if flat else 0
    return {"raw_nodes": raw, "reduced_nodes": reduced}


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_nonparam_transpose_growth(benchmark, n):
    sizes = benchmark.pedantic(
        lambda: _encode_size(
            "naiveTranspose",
            LaunchConfig(bdim=(n, n, 1), width=8),
            {"width": n, "height": n}),
        rounds=1, iterations=1)
    # The serialized encoding must mention every thread: growth is at least
    # linear in the thread count n*n.
    assert sizes["raw_nodes"] >= n * n


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_bitonic_encoding_growth(benchmark, n):
    """Branch-heavy scaling (log^2 n rounds, data-dependent swaps)."""
    sizes = benchmark.pedantic(
        lambda: _encode_size("bitonicSort",
                             LaunchConfig(bdim=(n, 1, 1), width=8), {}),
        rounds=1, iterations=1)
    assert sizes["raw_nodes"] > 0


def test_param_model_size_is_n_independent(benchmark):
    """The parameterized model of the same kernel has constant size — the
    whole point of Section IV."""
    from repro.param.ca import extract_model
    from repro.param.geometry import Geometry

    def build():
        _, info = load("naiveTranspose")
        geo = Geometry.create(8)
        inputs = {p: BVVar(f"sp.{p}", 8) for p in info.scalar_params}
        model = extract_model(info, geo, inputs, hint="sp")
        (ca,) = model.segments[0].cas
        return term_size(ca.guard, ca.value, *ca.address)

    size = benchmark.pedantic(build, rounds=1, iterations=1)
    # one symbolic thread: a few dozen nodes, regardless of any n
    assert size < 100
