"""Table I — the qualitative tool-comparison matrix (Section II-A).

The matrix itself is static, but this benchmark *asserts our column*: it
exercises each capability Table I claims for PUGpara — race checking,
functional correctness, equivalence checking, fully symbolic inputs, and
parameterized operation — through the real checkers, then prints the table.
"""

from __future__ import annotations

from repro.bench import table1
from repro.bench.harness import bench_timeout
from repro.check import (
    check_equivalence_param, check_functional_param, check_races,
    reduction_assumptions, transpose_assumptions,
)
from repro.check.result import Verdict
from repro.kernels import load, load_pair
from repro.param.equivalence import ParamOptions

CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
        "scalars": {"width": 4, "height": 4}}


def test_table1_capabilities(benchmark):
    def exercise():
        results = {}
        # Race checking, parameterized (symbolic tids, symbolic geometry).
        _, info = load("optimizedTranspose")
        results["race"] = check_races(
            info, 8, assumption_builder=transpose_assumptions,
            concretize=CONC, timeout=bench_timeout())
        # Functional correctness on fully symbolic inputs.
        _, naive = load("naiveTranspose")
        results["func"] = check_functional_param(
            naive, 8, assumption_builder=transpose_assumptions,
            concretize=CONC, timeout=bench_timeout())
        # Parameterized equivalence checking (any thread count).
        (_, src), (_, tgt) = load_pair("Reduction")
        results["equiv"] = check_equivalence_param(
            src, tgt, 8, assumption_builder=reduction_assumptions,
            options=ParamOptions(timeout=bench_timeout()))
        return results

    results = benchmark.pedantic(exercise, rounds=1, iterations=1)
    assert results["race"].verdict is Verdict.VERIFIED
    assert results["func"].verdict is Verdict.VERIFIED
    assert results["equiv"].verdict is Verdict.VERIFIED
    print()
    print(table1())
