#!/usr/bin/env python
"""Benchmark proof certification overhead.

Runs a suite of race and equivalence checks twice —

* ``plain``     — ``certify=False``: the solver's word is final;
* ``certified`` — ``certify=True``: every UNSAT verdict must carry a
  DRAT-style proof the independent checker accepts;

both at ``jobs=1`` with caching off, so the columns isolate the checker's
cost from cache and fan-out effects.  Each cell is run ``--repeats``
times and the minimum wall time is kept (the suite is deterministic; the
minimum is the least noisy estimator on a shared machine).

Writes ``BENCH_certify.json`` with per-cell times, verdicts and
certification counters (proofs checked/rejected, derivations logged and
re-derived, checker seconds), plus whole-suite totals and the headline
``overhead_certified`` ratio.

Verdicts must be identical across both modes (certification must never
*change* an answer, only refuse to trust a wrong one) and no cell may
reject a proof; either failure fails the run.  ``--check-regression``
additionally fails if the certified column exceeds
``RATIO * plain + SLACK`` on any cell — the gate CI uses to keep the
checker's cost honest.

Usage::

    PYTHONPATH=src python benchmarks/bench_certify.py [--smoke]
        [--repeats N] [--check-regression] [-o OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.configs import reduction_assumptions, transpose_assumptions
from repro.check.equivalence import check_equivalence
from repro.check.races import check_races
from repro.kernels import load
from repro.lang import LaunchConfig

TRANSPOSE_CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
                  "scalars": {"width": 4, "height": 4}}
REDUCE_CONC = {"bdim": (8, 1, 1), "gdim": (1, 1)}
TIMEOUT = 300.0

MODES = (
    ("plain", {"certify": False}),
    ("certified", {"certify": True}),
)

#: Regression gate: certified must not exceed ``RATIO * plain + SLACK``
#: seconds on any cell.  The ISSUE's acceptance bar is 1.5x; the absolute
#: slack keeps sub-second cells (where fixed checker setup dominates) from
#: tripping the ratio on noise.
REGRESSION_RATIO = 1.5
REGRESSION_SLACK = 0.3


def _suite(smoke: bool):
    """(name, callable(**mode_kwargs)) pairs — the benchmark workload.

    VERIFIED-heavy cells on purpose: certification only spends time on
    UNSAT verdicts, so race-free kernels and equivalent pairs are where
    the overhead actually shows.
    """
    _, naive_t = load("naiveTranspose")
    _, opt_t = load("optimizedTranspose")
    _, naive_r = load("naiveReduce")
    _, opt_r = load("optimizedReduce")

    def races(info, width, builder, conc):
        return lambda **kw: check_races(
            info, width, assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=1, cache=False, **kw)

    def equiv_param(src, tgt, width, builder, conc):
        return lambda **kw: check_equivalence(
            src, tgt, method="param", width=width,
            assumption_builder=builder, concretize=conc,
            timeout=TIMEOUT, jobs=1, cache=False, **kw)

    def equiv_nonparam(src, tgt, config, scalars):
        return lambda **kw: check_equivalence(
            src, tgt, method="nonparam", config=config,
            scalar_values=scalars, timeout=TIMEOUT, jobs=1, cache=False,
            **kw)

    cells = [
        ("races/optimizedTranspose/w8",
         races(opt_t, 8, transpose_assumptions, TRANSPOSE_CONC)),
        ("races/optimizedReduce/w16",
         races(opt_r, 16, reduction_assumptions, REDUCE_CONC)),
        ("races/naiveReduce/w16",
         races(naive_r, 16, reduction_assumptions, REDUCE_CONC)),
        ("equiv-param/Reduce/w8",
         equiv_param(naive_r, opt_r, 8, reduction_assumptions,
                     REDUCE_CONC)),
    ]
    if not smoke:
        cells += [
            ("races/optimizedTranspose/w16",
             races(opt_t, 16, transpose_assumptions, TRANSPOSE_CONC)),
            ("races/optimizedReduce/w32",
             races(opt_r, 32, reduction_assumptions, REDUCE_CONC)),
            ("equiv-param/Transpose/w8",
             equiv_param(naive_t, opt_t, 8, transpose_assumptions,
                         TRANSPOSE_CONC)),
            ("equiv-nonparam/Transpose4",
             equiv_nonparam(naive_t, opt_t,
                            LaunchConfig(bdim=(2, 2, 1), gdim=(2, 2),
                                         width=8),
                            {"width": 4, "height": 4})),
        ]
    return cells


def _run_cell(fn, kwargs, repeats: int):
    best = None
    outcome = None
    for _ in range(repeats):
        start = time.monotonic()
        outcome = fn(**kwargs)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    solver = outcome.stats.get("solver", {})
    cert = outcome.stats.get("certify", {})
    return {"verdict": outcome.verdict.name, "elapsed": round(best, 4),
            "queries": solver.get("queries", 0),
            "conflicts": int(solver.get("conflicts", 0)),
            "certify": {
                "checked": int(cert.get("checked", 0)),
                "rejected": int(cert.get("rejected", 0)),
                "trivial": int(cert.get("trivial", 0)),
                "steps": int(cert.get("steps", 0)),
                "verified": int(cert.get("verified", 0)),
                "time": round(float(cert.get("time", 0.0)), 4),
            }}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "BENCH_certify.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="small cell set for CI")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per cell; minimum wall time is kept")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if certified exceeds "
                             f"{REGRESSION_RATIO}x plain + "
                             f"{REGRESSION_SLACK}s on any cell")
    args = parser.parse_args(argv)

    suite = _suite(args.smoke)
    report = {"smoke": args.smoke, "repeats": args.repeats,
              "suite_size": len(suite), "cells": {}}
    totals = {mode: 0.0 for mode, _ in MODES}
    check_time = 0.0
    proofs = rejected = 0

    for name, fn in suite:
        cell = {}
        for mode, kwargs in MODES:
            print(f"{name} [{mode}] ...", flush=True)
            cell[mode] = _run_cell(fn, kwargs, args.repeats)
            totals[mode] += cell[mode]["elapsed"]
        if cell["plain"]["verdict"] != cell["certified"]["verdict"]:
            print(f"VERDICT MISMATCH at {name}: "
                  f"plain={cell['plain']['verdict']} "
                  f"certified={cell['certified']['verdict']}",
                  file=sys.stderr)
            return 1
        cert = cell["certified"]["certify"]
        if cert["rejected"]:
            print(f"PROOF REJECTED at {name}: {cert['rejected']} of "
                  f"{cert['checked']} proofs failed the checker",
                  file=sys.stderr)
            return 1
        check_time += cert["time"]
        proofs += cert["checked"]
        rejected += cert["rejected"]
        report["cells"][name] = cell

    report["totals"] = {m: round(t, 4) for m, t in totals.items()}
    report["proofs_checked"] = proofs
    report["proofs_rejected"] = rejected
    report["checker_seconds"] = round(check_time, 4)
    report["overhead_certified"] = round(
        totals["certified"] / totals["plain"], 3) if totals["plain"] \
        else None

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for mode, _ in MODES:
        print(f"{mode:12s} {totals[mode]:8.2f}s")
    print(f"proofs checked  {proofs} (rejected: {rejected}, "
          f"checker {check_time:.2f}s)")
    print(f"certified overhead x{report['overhead_certified']}")
    print(f"wrote {os.path.abspath(args.output)}")

    if args.check_regression:
        failed = False
        for name, cell in report["cells"].items():
            limit = (REGRESSION_RATIO * cell["plain"]["elapsed"]
                     + REGRESSION_SLACK)
            got = cell["certified"]["elapsed"]
            if got > limit:
                print(f"REGRESSION at {name}: certified {got:.2f}s > "
                      f"{limit:.2f}s ({REGRESSION_RATIO}x plain + slack)",
                      file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
