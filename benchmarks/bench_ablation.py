"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **simplifier** — the polynomial normalizer + read-over-write layer
  discharges most matched-write VCs before bit-blasting; turning it off
  shows how much of the parameterized method's speed comes from term-level
  reasoning (the paper's Section IV-C "reduces substantially the size of
  the constraints").
* **fast bug hunting** — Section IV-D's frame-skipping mode against the
  full checker on a buggy kernel.
* **counterexample minimization** — bounded-first search for small,
  replayable counterexamples vs. raw models.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_timeout
from repro.check.configs import transpose_assumptions
from repro.check.result import Verdict
from repro.kernels import address_mutants, load_pair
from repro.lang import check_kernel
from repro.param.equivalence import ParamOptions, check_equivalence_param

CONC = {"bdim": (2, 2, 1), "gdim": (2, 2),
        "scalars": {"width": 4, "height": 4}}


def _clean_pair():
    (_, src), (_, tgt) = load_pair("Transpose")
    return src, tgt


def _buggy_pair():
    (_, src), (tgt_kernel, _) = load_pair("Transpose")
    mutant = list(address_mutants(tgt_kernel))[0]
    return src, check_kernel(mutant.kernel)


@pytest.mark.parametrize("simplify", [True, False],
                         ids=["simplify-on", "simplify-off"])
def test_ablation_simplifier(benchmark, simplify):
    """Term-level simplification on/off, verified transpose +C."""
    src, tgt = _clean_pair()
    out = benchmark.pedantic(
        lambda: check_equivalence_param(
            src, tgt, 8, assumption_builder=transpose_assumptions,
            concretize=CONC,
            options=ParamOptions(timeout=bench_timeout(),
                                 simplify=simplify)),
        rounds=1, iterations=1)
    assert out.verdict in (Verdict.VERIFIED, Verdict.TIMEOUT)


@pytest.mark.parametrize("bughunt", [True, False],
                         ids=["bughunt", "full-frames"])
def test_ablation_bughunt(benchmark, bughunt):
    """Section IV-D's fast bug hunting vs. the full checker on an injected
    address bug (both must find it; bughunt should be faster)."""
    src, buggy = _buggy_pair()
    out = benchmark.pedantic(
        lambda: check_equivalence_param(
            src, buggy, 8, assumption_builder=transpose_assumptions,
            options=ParamOptions(timeout=bench_timeout(), bughunt=bughunt)),
        rounds=1, iterations=1)
    assert out.verdict in (Verdict.BUG, Verdict.TIMEOUT)


@pytest.mark.parametrize("minimize", [True, False],
                         ids=["minimize", "raw-model"])
def test_ablation_minimize(benchmark, minimize):
    """Bounded-first counterexample search: small models replay fast and
    confirm reliably; raw models may be huge (and unconfirmable)."""
    src, buggy = _buggy_pair()
    out = benchmark.pedantic(
        lambda: check_equivalence_param(
            src, buggy, 8, assumption_builder=transpose_assumptions,
            options=ParamOptions(timeout=bench_timeout(), bughunt=True,
                                 minimize=minimize)),
        rounds=1, iterations=1)
    if minimize:
        assert out.verdict is Verdict.BUG
        cex = out.counterexample
        assert max(cex.bdim) <= 8 and max(cex.gdim) <= 8
