#!/usr/bin/env python3
"""Loop-synchronized kernels: the reduction pair (Section IV-E).

The naive reduction uses the modulo test ``tid % (2k) == 0``; the optimized
one the strided index ``2*k*tid``.  Their loops align (same iteration
space), so the parameterized checker verifies the loop *bodies* once, for a
symbolic iteration ``k`` — the proof covers every power-of-two block size.

The recursive sum specification (the paper's assertion-language example) is
checked by the non-parameterized method, whose ghost-code executor unrolls
the spec loop at a concrete geometry.

Run:  python examples/reduction_verification.py
"""

from repro import LaunchConfig, ParamOptions, reduction_assumptions
from repro.check import check_equivalence_param, check_functional_nonparam
from repro.kernels import load, load_pair


def main() -> None:
    (_, naive), (_, optimized) = load_pair("Reduction")

    # -- parameterized equivalence: ANY power-of-two block size --------------
    print("1. parameterized equivalence, fully symbolic inputs (-C):")
    outcome = check_equivalence_param(
        naive, optimized, width=8,
        assumption_builder=reduction_assumptions,
        options=ParamOptions(timeout=180))
    print(f"   {outcome}")
    assert outcome.verdict.value == "verified"
    assert outcome.complete
    print("   -> equivalent for every pow2 block size and every input,")
    print(f"      via {outcome.vcs_checked} quantifier-free VCs.")

    # -- the sum specification ------------------------------------------------
    print("\n2. the recursive sum spec (spec block), per concrete n:")
    for n in (4, 8, 16):
        for name in ("naiveReduce", "optimizedReduce"):
            _, info = load(name)
            outcome = check_functional_nonparam(
                info, LaunchConfig(bdim=(n, 1, 1), width=8), timeout=120)
            print(f"   {name:16s} n={n:2d}: {outcome.verdict} "
                  f"({outcome.elapsed:.2f}s)")
            assert outcome.verdict.value == "verified"

    # -- what happens without the pow2 assumption ----------------------------
    print("\n3. reveal the power-of-two assumption (paper's ACCN bug class):")
    _, info = load("scalarProd")
    outcome = check_functional_nonparam(
        info, LaunchConfig(bdim=(6, 1, 1), width=8), timeout=120)
    print(f"   scalarProd with a 6-thread block: {outcome.verdict}")
    if outcome.counterexample:
        print(f"   counterexample: {outcome.counterexample.describe()}")
    assert outcome.verdict.value == "bug"


if __name__ == "__main__":
    main()
