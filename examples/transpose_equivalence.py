#!/usr/bin/env python3
"""The paper's flagship example (Section II): is the memory-coalescing
optimized matrix transpose equivalent to the naive one?

Three acts:

1. **verify** the pair under the valid-configuration assumptions (square
   block, covering grid) — a proof covering every configuration that
   satisfies them;
2. **reveal the hidden assumption** (Section IV-B: "PUGpara reports a bug
   when the block is not square"): drop squareness, get a replay-confirmed
   counterexample;
3. **compare with the non-parameterized baseline** (Section III) at a few
   concrete thread counts.

Run:  python examples/transpose_equivalence.py
"""

from functools import partial

from repro import LaunchConfig, ParamOptions, transpose_assumptions
from repro.check import check_equivalence_nonparam, check_equivalence_param
from repro.kernels import load_pair

CONCRETE = {"bdim": (2, 2, 1), "gdim": (2, 2),
            "scalars": {"width": 4, "height": 4}}


def main() -> None:
    (_, naive), (_, optimized) = load_pair("Transpose")

    # -- act 1: the proof ---------------------------------------------------
    print("1. parameterized equivalence (square block, +C geometry):")
    outcome = check_equivalence_param(
        naive, optimized, width=8,
        assumption_builder=transpose_assumptions,
        concretize=CONCRETE,
        options=ParamOptions(timeout=120))
    print(f"   {outcome}")
    assert outcome.verdict.value == "verified"

    # -- act 2: the hidden assumption ----------------------------------------
    print("\n2. drop the square-block assumption (the paper's '*' case):")
    outcome = check_equivalence_param(
        naive, optimized, width=8,
        assumption_builder=partial(transpose_assumptions, square=False),
        concretize={"bdim": (4, 2, 1), "gdim": (2, 4),
                    "scalars": {"width": 8, "height": 8}},
        options=ParamOptions(timeout=120))
    print(f"   {outcome}")
    assert outcome.verdict.value == "bug"
    print("   -> the optimized kernel is only correct for square blocks,")
    print("      and the counterexample was confirmed by concrete replay.")

    # -- act 3: the baseline -------------------------------------------------
    print("\n3. non-parameterized baseline (Section III), one n at a time:")
    for n, bdim in [(4, (2, 2, 1)), (16, (4, 4, 1))]:
        side = bdim[0] * 1  # single block: matrix side = block side
        outcome = check_equivalence_nonparam(
            naive, optimized,
            LaunchConfig(bdim=bdim, gdim=(1, 1), width=8),
            scalar_values={"width": side, "height": side}, timeout=120)
        print(f"   n={n:3d}: {outcome.verdict} "
              f"({outcome.elapsed:.2f}s)")
    print("\nNote how the baseline must be re-run per n, while act 1's")
    print("verdict holds for every covering square-block configuration.")


if __name__ == "__main__":
    main()
