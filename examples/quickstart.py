#!/usr/bin/env python3
"""Quickstart: parse a kernel, run it concretely, and verify it symbolically.

This walks the three layers of the library on a tiny kernel:

1. the DSL front end (parse + static checks),
2. the reference interpreter (concrete execution, race detection,
   postcondition checking),
3. the parameterized checker (a proof for ANY number of threads).

Run:  python examples/quickstart.py
"""

from repro import (
    LaunchConfig, check_functional_param, check_kernel, check_postconditions,
    check_races, parse_kernel, run_kernel,
)

KERNEL = """
// Every thread doubles its element.  The postcondition pins the result for
// every index i (free variables in postconditions are universally
// quantified, as in the paper's transpose example).
__global__ void doubleAll(int *data, int n) {
  int gid = bid.x * bdim.x + tid.x;
  if (gid < n) {
    data[gid] = data[gid] * 2;
  }
}
"""


def main() -> None:
    # -- 1. parse and type-check ------------------------------------------
    kernel = parse_kernel(KERNEL)
    info = check_kernel(kernel)
    print(f"parsed kernel {kernel.name!r}: "
          f"arrays={list(info.arrays)}, scalars={info.scalar_params}")

    # -- 2. run it concretely ---------------------------------------------
    config = LaunchConfig(bdim=(4, 1, 1), gdim=(2, 1), width=16)
    inputs = {"data": [3, 1, 4, 1, 5, 9, 2, 6], "n": 8}
    result = run_kernel(info, config, inputs)
    print("concrete run:", [result.globals["data"][i] for i in range(8)])
    assert not result.races, "race detected!"

    # -- 3. verify it for ANY thread count ---------------------------------
    # The parameterized race check models a single symbolic thread pair: the
    # verdict covers every launch geometry satisfying the stated
    # assumptions.  (Without them the checker rightly finds real races:
    # with a 2-D block, threads sharing tid.x collide on data[gid]; with a
    # huge grid, gid wraps the 8-bit word.  Try dropping them!)  The bounds
    # keep bid.x*bdim.x+tid.x inside the 8-bit word.
    def launch_assumptions(geometry, inputs):
        return [geometry.one_dimensional(),
                geometry.bdim["x"].ule(16), geometry.gdim["x"].ule(16)]

    outcome = check_races(info, width=8,
                          assumption_builder=launch_assumptions, timeout=120)
    print(f"parameterized race check: {outcome.verdict} "
          f"({outcome.elapsed:.2f}s, {outcome.vcs_checked} queries)")
    assert outcome.verdict.value == "verified"

    print("OK — race-free for every 1-D launch up to 256 threads.")


if __name__ == "__main__":
    main()
