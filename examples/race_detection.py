#!/usr/bin/env python3
"""Parameterized race detection (Table I's "Race ... Yes" row).

The classic in-place Hillis-Steele scan races (threads read cells their
neighbours are updating in the same barrier interval); the ping-pong
buffered version does not.  Both verdicts here are parameterized: two
*symbolic* threads of a symbolic geometry, so "verified" covers every
launch and "bug" comes with a replayed concrete witness.

Run:  python examples/race_detection.py
"""

from repro import LaunchConfig, check_races, reduction_assumptions, run_kernel
from repro.kernels import load

CONCRETE = {"bdim": (8, 1, 1), "gdim": (1, 1)}


def main() -> None:
    # -- the broken scan ------------------------------------------------------
    _, racy = load("scanRacy")
    print("1. in-place Hillis-Steele scan (no double buffering):")
    outcome = check_races(racy, width=8,
                          assumption_builder=reduction_assumptions,
                          concretize=CONCRETE, timeout=120)
    print(f"   {outcome.verdict} ({outcome.elapsed:.2f}s)")
    assert outcome.verdict.value == "bug"
    print(f"   {outcome.counterexample.detail}")

    # corroborate dynamically
    result = run_kernel(racy, LaunchConfig(bdim=(8, 1, 1), width=8),
                        {"g_idata": list(range(8))})
    print(f"   dynamic detector agrees: {len(result.races)} conflicting "
          f"access pairs, e.g. {result.races[0]}")

    # -- the fixed scan -------------------------------------------------------
    print("\n2. ping-pong buffered scan (the SDK's scan_naive):")
    _, fixed = load("scanNaive")
    result = run_kernel(fixed, LaunchConfig(bdim=(8, 1, 1), width=8),
                        {"g_idata": list(range(8))})
    print(f"   dynamic detector: {len(result.races)} races")
    assert not result.races
    print("   output:", [result.globals["g_odata"].get(i, 0)
                         for i in range(8)])

    # -- a fully parameterized verdict ---------------------------------------
    print("\n3. the reduction kernel, race-free for ANY pow2 block size:")
    _, reduce_ = load("optimizedReduce")
    outcome = check_races(reduce_, width=8,
                          assumption_builder=reduction_assumptions,
                          timeout=180)
    print(f"   {outcome.verdict} ({outcome.elapsed:.2f}s, "
          f"{outcome.vcs_checked} queries)")
    assert outcome.verdict.value == "verified"


if __name__ == "__main__":
    main()
