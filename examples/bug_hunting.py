#!/usr/bin/env python3
"""Fast bug hunting (Section IV-D) across a mutant population.

Injects the paper's two bug classes into the optimized transpose —
address off-by-ones and guard mutations — then hunts each with the
parameterized checker in bughunt mode (frames skipped: quick, still no
false alarms thanks to counterexample replay).

Run:  python examples/bug_hunting.py
"""

from repro import ParamOptions, check_kernel, transpose_assumptions
from repro.check import check_equivalence_param
from repro.kernels import all_mutants, load_pair

CONCRETE = {"bdim": (2, 2, 1), "gdim": (2, 2),
            "scalars": {"width": 4, "height": 4}}


def main() -> None:
    (_, naive), (opt_kernel, _) = load_pair("Transpose")
    mutants = all_mutants(opt_kernel)
    print(f"injected {len(mutants)} single-site mutations into "
          f"{opt_kernel.name!r}\n")

    found = verified = inconclusive = 0
    for mutant in mutants:
        info = check_kernel(mutant.kernel)
        # address bugs: fully parameterized fast hunt;
        # guard bugs only bite off covering configs — use +C there.
        is_guard = mutant.label.startswith("guard")
        outcome = check_equivalence_param(
            naive, info, width=8,
            assumption_builder=transpose_assumptions,
            concretize=CONCRETE if is_guard else None,
            options=ParamOptions(timeout=60, bughunt=not is_guard))
        verdict = outcome.verdict.value
        mark = {"bug": "FOUND", "verified": "equivalent"}.get(verdict,
                                                              verdict)
        print(f"  {mutant.label:12s} {mutant.description[:52]:54s} "
              f"{mark:12s} ({outcome.elapsed:.2f}s)")
        if verdict == "bug":
            found += 1
            cex = outcome.counterexample
            print(f"{'':14s}counterexample: {cex.describe()[:90]}")
        elif verdict == "verified":
            verified += 1
        else:
            inconclusive += 1

    print(f"\nfound {found} real bugs, {verified} mutants proved harmless "
          f"at this configuration, {inconclusive} inconclusive")
    print("(every FOUND was confirmed by replaying both kernels on the")
    print(" reference interpreter — no false alarms, as the paper promises)")
    assert found >= 4


if __name__ == "__main__":
    main()
