"""Packaging for the PUGpara reproduction.

Metadata lives here rather than in pyproject.toml because the offline build
environment lacks the `wheel` package: a pyproject [project] table would
force pip onto the PEP 517/660 path, which needs bdist_wheel.  The legacy
`setup.py develop` path used by `pip install -e .` needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="pugpara",
    version="0.1.0",
    description=(
        "Reproduction of 'Parameterized Verification of GPU Kernel Programs' "
        "(PUGpara, 2012): a parameterized SMT-based equivalence and "
        "correctness checker for CUDA-style kernels, with a from-scratch "
        "QF_ABV SMT solver."
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["pugpara=repro.cli:main"]},
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
